// Online request serving: a B+-tree forest striped across the machine, fed
// by generated query streams (uniform / Zipf-skewed / bursty arrivals) in
// fixed-size batches.  Unlike the figure benches, the headline metrics are
// tail latencies (p50/p95/p99 per op phase) and sustained throughput on the
// simulated clock — the serving-side restatement of the paper's locality
// claims:
//
//   * On the Xeon baseline, Zipf skew funnels inserts through one family's
//     writer latch, so p99 rises while the cache-warmed median holds — the
//     zipf/uniform p99 ordering is a CI shape gate.
//   * On the Emu, requests migrate to the owning nodelet and mutate without
//     locks; skew queues one nodelet's cores, lifting p50 and p99 together,
//     so the p99/p50 ratio stays bounded — also a gate.
//   * Closed-loop batch scaling (table B) is monotone non-decreasing up to
//     a knee where the nodelets saturate — gated with monotone_nondec.
//
// Per-point histograms (serve::PhasedLatency) are embedded in the result
// JSON under the additive "latency" key ("series/label" -> blob); point
// extras carry the lat_p50_us/lat_p95_us/lat_p99_us summaries that
// tools/shapecheck and tools/benchdiff read through the normal metric path.
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "serve/service.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

namespace {

double to_us(Time ps) { return static_cast<double>(ps) * 1e-6; }

std::vector<std::pair<std::string, double>> point_extras(
    const serve::ServeResult& r) {
  const auto& lat = r.lat.overall();
  double hot = 0.0;
  if (r.ops > 0 && !r.range_ops.empty()) {
    hot = static_cast<double>(r.range_ops[0]) / static_cast<double>(r.ops);
  }
  return {{"sim_ms", to_seconds(r.elapsed) * 1e3},
          {"lat_p50_us", to_us(lat.p50())},
          {"lat_p95_us", to_us(lat.p95())},
          {"lat_p99_us", to_us(lat.p99())},
          {"lat_max_us", to_us(lat.max())},
          {"hot_range_share", hot}};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("serve_btree", argc, argv);
  const auto emu_cfg = emu::SystemConfig::chick_hw();
  const auto emu2_cfg = emu::SystemConfig::fullspeed_multinode(2);
  const auto xeon_cfg = xeon::SystemConfig::sandy_bridge();

  serve::ServeParams base;
  base.stream.requests = h.quick() ? (1u << 11) : (1u << 13);
  base.stream.key_space = h.quick() ? (1u << 13) : (1u << 14);

  bench::record_config(h, emu_cfg, "emu.");
  bench::record_config(h, emu2_cfg, "emu2.");
  bench::record_config(h, xeon_cfg, "xeon.");
  h.config("requests", static_cast<long long>(base.stream.requests));
  h.config("batch", static_cast<long long>(base.stream.batch));
  h.config("key_space", static_cast<long long>(base.stream.key_space));
  h.config("zipf_theta", "0.99");
  h.config("mean_interarrival_ns",
           static_cast<long long>(base.stream.mean_interarrival / 1000));
  h.config("fanout", static_cast<long long>(base.fanout));
  h.config("threads", static_cast<long long>(base.threads));
  h.config("seed", static_cast<long long>(base.stream.seed));
  h.axes("batch", "mops_per_sec");

  // Per-point latency blobs, written by jobs into stable slots (deque:
  // references survive later push_backs) and assembled into the result's
  // "latency" map after the merge barrier — submission order, so the JSON
  // is byte-identical across --jobs values.
  struct LatSlot {
    std::string key;
    report::Json blob;
  };
  std::deque<LatSlot> lat_slots;

  bench::SweepPool pool(h);

  const std::string table_a =
      "Serving A: arrival processes — throughput and tail latency "
      "(open loop)";
  const serve::Arrival processes[3] = {serve::Arrival::uniform,
                                       serve::Arrival::zipf,
                                       serve::Arrival::bursty};

  struct Backend {
    std::string series;
    bool is_emu;
    const emu::SystemConfig* emu;
    const xeon::SystemConfig* xeon;
  };
  const Backend backends[3] = {{"emu", true, &emu_cfg, nullptr},
                               {"xeon", false, nullptr, &xeon_cfg},
                               {"emu2", true, &emu2_cfg, nullptr}};

  auto run_point = [&h](bench::PointSink& sink, const Backend& be,
                        const serve::ServeParams& p) {
    const auto r = bench::repeated(h, [&] {
      return be.is_emu ? serve::serve_emu(*be.emu, p)
                       : serve::serve_xeon(*be.xeon, p);
    });
    if (!r.verified) {
      sink.fail(be.series + " serve verification failed: " + r.error);
    }
    return r;
  };

  for (const Backend& be : backends) {
    if (!h.enabled(be.series)) continue;
    // The 2-node config exists to exercise the sharded engine (it is the
    // --engine-threads determinism coverage); one skewed point suffices.
    const bool all_processes = be.series != "emu2";
    for (int i = 0; i < 3; ++i) {
      const serve::Arrival a = processes[i];
      if (!all_processes && a != serve::Arrival::zipf) continue;
      lat_slots.push_back({be.series + "/" + to_string(a), report::Json()});
      report::Json* slot = &lat_slots.back().blob;
      pool.submit([&run_point, &be, table_a, a, i, base,
                   slot](bench::PointSink& sink) {
        serve::ServeParams p = base;
        p.stream.process = a;
        sink.table(table_a);
        const auto r = run_point(sink, be, p);
        sink.add_labeled(be.series, to_string(a), static_cast<double>(i),
                         r.mops_per_sec, point_extras(r));
        *slot = r.lat.to_json();
      });
    }
  }

  const std::string table_b =
      "Serving B: closed-loop batch-size sweep — sustained throughput";
  const std::vector<std::uint32_t> batches =
      h.quick() ? std::vector<std::uint32_t>{8, 32, 128}
                : std::vector<std::uint32_t>{8, 16, 32, 64, 128, 256};
  const Backend sweep_backends[2] = {{"emu_batch", true, &emu_cfg, nullptr},
                                     {"xeon_batch", false, nullptr,
                                      &xeon_cfg}};
  for (const Backend& be : sweep_backends) {
    if (!h.enabled(be.series)) continue;
    for (std::uint32_t b : batches) {
      lat_slots.push_back(
          {be.series + "/" + std::to_string(b), report::Json()});
      report::Json* slot = &lat_slots.back().blob;
      pool.submit([&run_point, &be, table_b, b, base,
                   slot](bench::PointSink& sink) {
        serve::ServeParams p = base;
        p.stream.process = serve::Arrival::zipf;
        p.stream.batch = b;
        p.stream.mean_interarrival = 0;  // closed loop: offered load = inf
        sink.table(table_b);
        const auto r = run_point(sink, be, p);
        sink.add(be.series, static_cast<double>(b), r.mops_per_sec,
                 point_extras(r));
        *slot = r.lat.to_json();
      });
    }
  }

  pool.wait();

  report::Json lat = report::Json::object();
  for (auto& s : lat_slots) {
    if (!s.blob.is_null()) lat.set(s.key, std::move(s.blob));
  }
  h.set_latency(std::move(lat));
  return h.done();
}
