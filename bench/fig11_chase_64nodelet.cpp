// Figure 11: simulated pointer chasing on a full-speed 64-nodelet Emu
// system (8 node cards, 4 Gossamer cores per nodelet at 300 MHz,
// NCDRAM-2133).
//
// Paper shape: even at this scale the system stays insensitive to the
// granularity of spatial locality (flat across block sizes, with the
// block-1 migration-bound dip), and bandwidth keeps scaling up to
// thousands of threads.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;
using kernels::ChaseEmuParams;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto cfg = emu::SystemConfig::fullspeed_multinode(8);
  const std::size_t n = opt.quick ? (1u << 16) : (1u << 19);

  report::CsvWriter csv(opt.csv_path, {"figure", "threads", "block",
                                       "mb_per_sec", "migrations_per_element"});

  const std::vector<int> thread_counts =
      opt.quick ? std::vector<int>{512}
                : std::vector<int>{512, 1024, 2048, 4096};
  const std::vector<std::size_t> blocks =
      opt.quick ? std::vector<std::size_t>{1, 64}
                : std::vector<std::size_t>{1, 4, 16, 64, 128, 256, 512};

  report::Table t(
      "Fig 11: Pointer chasing, full-speed Emu, 64 nodelets "
      "(chick_fullspeed x8 nodes), full_block_shuffle — MB/s");
  {
    std::vector<std::string> hdr = {"block"};
    for (int th : thread_counts) hdr.push_back(std::to_string(th) + " thr");
    t.columns(hdr);
  }
  for (std::size_t b : blocks) {
    std::vector<std::string> cells = {
        report::Table::integer(static_cast<long long>(b))};
    for (int th : thread_counts) {
      if (n / b < static_cast<std::size_t>(th)) {
        cells.push_back("-");
        continue;
      }
      ChaseEmuParams p;
      p.n = n;
      p.block = b;
      p.threads = th;
      const auto r = kernels::run_chase_emu(cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: chase verification failed\n");
        return 1;
      }
      cells.push_back(report::Table::num(r.mb_per_sec));
      csv.row({"fig11", report::Table::integer(th),
               report::Table::integer(static_cast<long long>(b)),
               report::Table::num(r.mb_per_sec),
               report::Table::num(r.migrations_per_element, 3)});
    }
    t.row(cells);
  }
  t.print();
  return 0;
}
