// Figure 11: simulated pointer chasing on a full-speed 64-nodelet Emu
// system (8 node cards, 4 Gossamer cores per nodelet at 300 MHz,
// NCDRAM-2133).
//
// Paper shape: even at this scale the system stays insensitive to the
// granularity of spatial locality (flat across block sizes, with the
// block-1 migration-bound dip), and bandwidth keeps scaling up to
// thousands of threads.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "sweep_pool.hpp"

using namespace emusim;
using kernels::ChaseEmuParams;

int main(int argc, char** argv) {
  bench::Harness h("fig11_chase_64nodelet", argc, argv);
  const auto cfg = emu::SystemConfig::fullspeed_multinode(8);
  // Quick mode keeps both of the figure's claims checkable: two thread
  // counts for the scaling claim, blocks 16 and 64 for the flatness claim
  // (n/block must stay >= threads).
  const std::size_t n = h.quick() ? (1u << 17) : (1u << 19);
  bench::record_config(h, cfg);
  h.config("n", static_cast<long long>(n));
  h.axes("block", "mb_per_sec");
  h.table(
      "Fig 11: Pointer chasing, full-speed Emu, 64 nodelets "
      "(chick_fullspeed x8 nodes), full_block_shuffle — MB/s");

  const std::vector<int> thread_counts =
      h.quick() ? std::vector<int>{512, 2048}
                : std::vector<int>{512, 1024, 2048, 4096};
  const std::vector<std::size_t> blocks =
      h.quick() ? std::vector<std::size_t>{1, 16, 64}
                : std::vector<std::size_t>{1, 4, 16, 64, 128, 256, 512};

  bench::SweepPool pool(h);
  for (std::size_t b : blocks) {
    for (int t : thread_counts) {
      const std::string series = "t" + std::to_string(t);
      if (!h.enabled(series)) continue;
      if (n / b < static_cast<std::size_t>(t)) continue;
      pool.submit([&h, &cfg, series, n, b, t](bench::PointSink& sink) {
        ChaseEmuParams p;
        p.n = n;
        p.block = b;
        p.threads = t;
        const auto r = bench::repeated(
            h, [&] { return kernels::run_chase_emu(cfg, p); });
        if (!r.verified) sink.fail("chase verification failed");
        sink.add(series, static_cast<double>(b), r.mb_per_sec,
                 {{"sim_ms", to_seconds(r.elapsed) * 1e3},
                  {"migrations_per_element", r.migrations_per_element}});
      });
    }
  }
  pool.wait();
  return h.done();
}
