// Ablation: the paper's Section II-D claim — narrow-channel DRAM (8-bit,
// 2 GB/s per channel, many channels) sustains more simultaneous fine-
// grained accesses than a conventional wide bus of the same aggregate peak.
//
// We compare the chick's 8x 8-bit channels against a hypothetical Emu with
// one 64-bit channel of the same total bandwidth serving all eight
// nodelets... which our machine model can't literally express (channels are
// per-nodelet), so instead we sweep the channel's bus width while scaling
// the transfer rate to hold per-channel peak constant, and measure random
// 8-byte read throughput directly at the DRAM model.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mem/dram.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

namespace {

sim::Task reader(sim::Engine& eng, mem::DramChannel& ch, std::uint64_t addr,
                 std::uint32_t bytes) {
  co_await ch.read(addr, bytes);
  (void)eng;
}

/// Issue `count` random reads of `bytes` each and return useful MB/s.
double random_read_bandwidth(const mem::DramTiming& timing,
                             std::uint32_t bytes, int count) {
  sim::Engine eng;
  mem::DramChannel ch(eng, timing);
  sim::Rng rng(99);
  std::vector<sim::Task> ts;
  ts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint64_t addr = rng.below(1u << 30) & ~7ULL;
    ts.push_back(reader(eng, ch, addr, bytes));
  }
  for (auto& t : ts) t.start();
  const Time elapsed = eng.run();
  return mb_per_sec(static_cast<double>(bytes) * count, elapsed);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("abl_channel_width", argc, argv);
  const int count = h.quick() ? 2000 : 20000;
  h.config("reads", static_cast<long long>(count));
  h.config("per_channel_peak_mbps", "1600");
  h.axes("bus_bits", "useful_mbps");
  h.table(
      "Ablation: random reads through one DRAM channel — bus width vs "
      "useful bandwidth (per-channel peak held at 1.6 GB/s)");

  bench::SweepPool pool(h);
  for (int bus_bits : {8, 16, 32, 64}) {
    pool.submit([&h, count, bus_bits](bench::PointSink& sink) {
      mem::DramTiming timing = mem::DramTiming::ncdram_chick();
      timing.bus_bits = bus_bits;
      // Hold peak constant: wider bus, proportionally slower transfer
      // clock.
      timing.transfer_rate_mts = 1600.0 * 8 / bus_bits;

      const double bw8 = bench::repeated(
          h, [&] { return random_read_bandwidth(timing, 8, count); });
      const double bw64 = bench::repeated(
          h, [&] { return random_read_bandwidth(timing, 64, count); });
      const double eff = bw8 / (timing.bytes_per_sec() / 1e6);
      if (h.enabled("read8")) {
        sink.add("read8", bus_bits, bw8, {{"efficiency", eff}});
      }
      if (h.enabled("read64")) sink.add("read64", bus_bits, bw64);
    });
  }
  pool.wait();
  std::printf(
      "\nNote: with the peak held constant, every width moves 64 B bursts "
      "equally well;\nthe narrow bus wins on 8 B requests because its "
      "minimum burst matches the request.\n");
  return h.done();
}
