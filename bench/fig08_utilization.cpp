// Figure 8: pointer-chase bandwidth *utilization* — each platform's chase
// bandwidth normalized to its own measured STREAM peak.
//
// Paper shape: the Emu sustains ~80% of its available bandwidth across a
// wide range of block sizes (worst ~50%, at low thread counts / block 1);
// the Sandy Bridge Xeon stays below ~25% and needs multi-kilobyte blocks to
// get there at all.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/stream_emu.hpp"
#include "kernels/stream_xeon.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("fig08_utilization", argc, argv);
  const auto emu_cfg = emu::SystemConfig::chick_hw();
  const auto snb_cfg = xeon::SystemConfig::sandy_bridge();
  bench::record_config(h, emu_cfg, "emu.");
  bench::record_config(h, snb_cfg, "xeon.");
  h.axes("block", "mb_per_sec");

  // --- measured STREAM peaks (the normalization denominators) ------------
  kernels::StreamParams esp;
  esp.n = h.quick() ? (1u << 17) : (1u << 20);
  esp.threads = 512;
  esp.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
  const auto emu_peak = kernels::run_stream_add(emu_cfg, esp);

  kernels::StreamXeonParams xsp;
  xsp.n = h.quick() ? (1u << 18) : (1u << 20);
  xsp.threads = 16;
  const auto snb_peak = kernels::run_stream_xeon(snb_cfg, xsp);

  std::printf("Measured STREAM peaks: Emu %.1f MB/s, Sandy Bridge %.1f MB/s\n",
              emu_peak.mb_per_sec, snb_peak.mb_per_sec);
  h.config("emu_stream_peak_mbps", report::json_number(emu_peak.mb_per_sec));
  h.config("xeon_stream_peak_mbps", report::json_number(snb_peak.mb_per_sec));

  const std::vector<std::size_t> blocks =
      h.quick() ? std::vector<std::size_t>{1, 64, 1024}
                : std::vector<std::size_t>{1, 4, 16, 64, 256, 1024, 4096};
  // The Xeon list must stay DRAM-resident (see fig07) for the utilization
  // ceiling to mean what the paper means.
  const std::size_t emu_n = h.quick() ? (1u << 15) : (1u << 18);
  const std::size_t xeon_n =
      h.quick() ? (std::size_t{1} << 21) : (std::size_t{1} << 22);
  h.config("emu_n", static_cast<long long>(emu_n));
  h.config("xeon_n", static_cast<long long>(xeon_n));

  h.table(
      "Fig 8: Pointer-chase bandwidth (MB/s; utilization of own STREAM peak "
      "in extras), full_block_shuffle, max threads (Emu 512 / Xeon 32)");
  bench::SweepPool pool(h);
  for (std::size_t b : blocks) {
    // One job per block runs both platforms, like one serial loop body did:
    // counter attribution and failure order stay identical.
    pool.submit([&h, &emu_cfg, &snb_cfg, &emu_peak, &snb_peak, emu_n, xeon_n,
                 b](bench::PointSink& sink) {
      kernels::ChaseEmuParams ep;
      ep.n = emu_n;
      ep.block = b;
      // One chain per block at minimum: clamp threads for the largest
      // blocks.
      ep.threads = static_cast<int>(std::min<std::size_t>(512, emu_n / b));
      const auto er = bench::repeated(
          h, [&] { return kernels::run_chase_emu(emu_cfg, ep); });

      kernels::ChaseXeonParams xp;
      xp.n = xeon_n;
      xp.block = b;
      xp.threads = 32;
      const auto xr = bench::repeated(
          h, [&] { return kernels::run_chase_xeon(snb_cfg, xp); });

      if (!er.verified || !xr.verified) sink.fail("chase verification failed");
      const double eu = 100.0 * er.mb_per_sec / emu_peak.mb_per_sec;
      const double xu = 100.0 * xr.mb_per_sec / snb_peak.mb_per_sec;
      if (h.enabled("emu")) {
        sink.add("emu", static_cast<double>(b), er.mb_per_sec,
                 {{"utilization_pct", eu},
                  {"sim_ms", to_seconds(er.elapsed) * 1e3}});
      }
      if (h.enabled("xeon")) {
        sink.add("xeon", static_cast<double>(b), xr.mb_per_sec,
                 {{"utilization_pct", xu},
                  {"sim_ms", to_seconds(xr.elapsed) * 1e3}});
      }
    });
  }
  pool.wait();
  return h.done();
}
