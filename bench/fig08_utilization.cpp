// Figure 8: pointer-chase bandwidth *utilization* — each platform's chase
// bandwidth normalized to its own measured STREAM peak.
//
// Paper shape: the Emu sustains ~80% of its available bandwidth across a
// wide range of block sizes (worst ~50%, at low thread counts / block 1);
// the Sandy Bridge Xeon stays below ~25% and needs multi-kilobyte blocks to
// get there at all.
#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/stream_emu.hpp"
#include "kernels/stream_xeon.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto emu_cfg = emu::SystemConfig::chick_hw();
  const auto snb_cfg = xeon::SystemConfig::sandy_bridge();

  // --- measured STREAM peaks (the normalization denominators) ------------
  kernels::StreamParams esp;
  esp.n = opt.quick ? (1u << 17) : (1u << 20);
  esp.threads = 512;
  esp.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
  const auto emu_peak = kernels::run_stream_add(emu_cfg, esp);

  kernels::StreamXeonParams xsp;
  xsp.n = opt.quick ? (1u << 18) : (1u << 20);
  xsp.threads = 16;
  const auto snb_peak = kernels::run_stream_xeon(snb_cfg, xsp);

  std::printf("Measured STREAM peaks: Emu %.1f MB/s, Sandy Bridge %.1f MB/s\n",
              emu_peak.mb_per_sec, snb_peak.mb_per_sec);

  report::CsvWriter csv(opt.csv_path, {"figure", "platform", "block",
                                       "mb_per_sec", "utilization"});

  report::Table t(
      "Fig 8: Pointer-chase bandwidth utilization (% of own STREAM peak), "
      "full_block_shuffle, max threads (Emu 512 / Xeon 32)");
  t.columns({"block", "emu %", "xeon %"});

  const std::vector<std::size_t> blocks =
      opt.quick ? std::vector<std::size_t>{1, 64, 1024}
                : std::vector<std::size_t>{1, 4, 16, 64, 256, 1024, 4096};
  const std::size_t emu_n = opt.quick ? (1u << 15) : (1u << 18);
  const std::size_t xeon_n = opt.quick ? (1u << 16) : (std::size_t{1} << 22);

  for (std::size_t b : blocks) {
    kernels::ChaseEmuParams ep;
    ep.n = emu_n;
    ep.block = b;
    // One chain per block at minimum: clamp threads for the largest blocks.
    ep.threads = static_cast<int>(
        std::min<std::size_t>(opt.quick ? 64 : 512, emu_n / b));
    const auto er = kernels::run_chase_emu(emu_cfg, ep);

    kernels::ChaseXeonParams xp;
    xp.n = xeon_n;
    xp.block = b;
    xp.threads = 32;
    const auto xr = kernels::run_chase_xeon(snb_cfg, xp);

    if (!er.verified || !xr.verified) {
      std::fprintf(stderr, "FAIL: chase verification failed\n");
      return 1;
    }
    const double eu = 100.0 * er.mb_per_sec / emu_peak.mb_per_sec;
    const double xu = 100.0 * xr.mb_per_sec / snb_peak.mb_per_sec;
    t.row({report::Table::integer(static_cast<long long>(b)),
           report::Table::num(eu), report::Table::num(xu)});
    csv.row({"fig8", "emu", report::Table::integer(static_cast<long long>(b)),
             report::Table::num(er.mb_per_sec), report::Table::num(eu, 3)});
    csv.row({"fig8", "xeon", report::Table::integer(static_cast<long long>(b)),
             report::Table::num(xr.mb_per_sec), report::Table::num(xu, 3)});
  }
  t.print();
  return 0;
}
