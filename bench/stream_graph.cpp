// Streaming graph updates with concurrent analytics — the irregular-suite
// bench.  Epochs of concurrent edge-insert batches interleave with degree
// probes and full BFS sweeps on both machine models, every epoch checked
// against a from-scratch batch-built oracle inside the drivers:
//
//   * Table A runs the insert+query mix under uniform and RMAT-skewed
//     update streams.  The duplicate share (re-inserted edges committing as
//     no-ops) is a deterministic workload property — gated value_between.
//   * Table B sweeps the insert batch size closed-loop; sustained insert
//     throughput must grow monotonically with batch on both backends
//     (monotone_nondec gates) until dispatch overhead amortizes.
//   * Table C counts triangles on the same graph families (forward
//     merge-intersection on both backends; counts must agree exactly with
//     the host reference — the drivers verify, the bench fails otherwise).
//
// Per-phase (insert/degree/bfs) histograms ride in the "latency" blob;
// point extras carry p50/p99 summaries through the normal metric path.
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "graph/stream_graph.hpp"
#include "kernels/tc.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

namespace {

double to_us(Time ps) { return static_cast<double>(ps) * 1e-6; }

std::vector<std::pair<std::string, double>> point_extras(
    const graph::StreamResult& r) {
  const auto& lat = r.lat.overall();
  const double dup_share =
      r.inserts > 0 ? 1.0 - static_cast<double>(r.new_edges) /
                                static_cast<double>(r.inserts)
                    : 0.0;
  return {{"sim_ms", to_seconds(r.elapsed) * 1e3},
          {"dup_share", dup_share},
          {"mops_per_sec", r.ops_per_sec / 1e6},
          {"migrations", static_cast<double>(r.migrations)},
          {"lat_p50_us", to_us(lat.p50())},
          {"lat_p99_us", to_us(lat.p99())},
          {"lat_max_us", to_us(lat.max())}};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("stream_graph", argc, argv);
  const auto emu_cfg = emu::SystemConfig::chick_hw();
  const auto emu2_cfg = emu::SystemConfig::fullspeed_multinode(2);
  const auto xeon_cfg = xeon::SystemConfig::sandy_bridge();

  graph::StreamParams base;
  base.num_vertices = h.quick() ? (1u << 9) : (1u << 11);
  base.inserts = h.quick() ? (1u << 11) : (1u << 13);
  base.epochs = h.quick() ? 2 : 4;
  base.degree_queries = h.quick() ? 32 : 64;

  bench::record_config(h, emu_cfg, "emu.");
  bench::record_config(h, emu2_cfg, "emu2.");
  bench::record_config(h, xeon_cfg, "xeon.");
  h.config("num_vertices", static_cast<long long>(base.num_vertices));
  h.config("inserts", static_cast<long long>(base.inserts));
  h.config("epochs", static_cast<long long>(base.epochs));
  h.config("batch", static_cast<long long>(base.batch));
  h.config("duplicate_fraction", "0.1");
  h.config("degree_queries", static_cast<long long>(base.degree_queries));
  h.config("threads", static_cast<long long>(base.threads));
  h.config("seed", static_cast<long long>(base.seed));
  h.axes("batch", "minserts_per_sec");

  struct LatSlot {
    std::string key;
    report::Json blob;
  };
  std::deque<LatSlot> lat_slots;

  bench::SweepPool pool(h);

  struct Backend {
    std::string series;
    bool is_emu;
    const emu::SystemConfig* emu;
    const xeon::SystemConfig* xeon;
  };
  const Backend backends[3] = {{"emu", true, &emu_cfg, nullptr},
                               {"xeon", false, nullptr, &xeon_cfg},
                               {"emu2", true, &emu2_cfg, nullptr}};

  auto run_point = [&h](bench::PointSink& sink, const Backend& be,
                        const graph::StreamParams& p) {
    const auto r = bench::repeated(h, [&] {
      return be.is_emu ? graph::stream_emu(*be.emu, p)
                       : graph::stream_xeon(*be.xeon, p);
    });
    if (!r.verified) {
      sink.fail(be.series + " streaming oracle check failed: " + r.error);
    }
    return r;
  };

  const std::string table_a =
      "Streaming A: insert + query mix under uniform and skewed update "
      "streams";
  const graph::EdgeDist dists[2] = {graph::EdgeDist::uniform,
                                    graph::EdgeDist::rmat};
  for (const Backend& be : backends) {
    if (!h.enabled(be.series)) continue;
    // emu2 exists to exercise the sharded engine (--engine-threads
    // determinism coverage); one skewed point suffices.
    const bool all_dists = be.series != "emu2";
    for (int i = 0; i < 2; ++i) {
      const graph::EdgeDist dist = dists[i];
      if (!all_dists && dist != graph::EdgeDist::rmat) continue;
      lat_slots.push_back(
          {be.series + "/" + to_string(dist), report::Json()});
      report::Json* slot = &lat_slots.back().blob;
      pool.submit([&run_point, &be, table_a, dist, i, base,
                   slot](bench::PointSink& sink) {
        graph::StreamParams p = base;
        p.dist = dist;
        sink.table(table_a);
        const auto r = run_point(sink, be, p);
        sink.add_labeled(be.series, to_string(dist), static_cast<double>(i),
                         r.inserts_per_sec / 1e6, point_extras(r));
        *slot = r.lat.to_json();
      });
    }
  }

  const std::string table_b =
      "Streaming B: insert batch-size sweep — sustained insert throughput";
  const std::vector<std::uint32_t> batches =
      h.quick() ? std::vector<std::uint32_t>{16, 64, 256}
                : std::vector<std::uint32_t>{8, 16, 32, 64, 128, 256};
  const Backend sweep_backends[2] = {{"emu_batch", true, &emu_cfg, nullptr},
                                     {"xeon_batch", false, nullptr,
                                      &xeon_cfg}};
  for (const Backend& be : sweep_backends) {
    if (!h.enabled(be.series)) continue;
    for (std::uint32_t b : batches) {
      lat_slots.push_back(
          {be.series + "/" + std::to_string(b), report::Json()});
      report::Json* slot = &lat_slots.back().blob;
      pool.submit([&run_point, &be, table_b, b, base,
                   slot](bench::PointSink& sink) {
        graph::StreamParams p = base;
        p.batch = b;
        p.degree_queries = 0;  // isolate the insert path
        p.bfs_queries = 0;
        sink.table(table_b);
        const auto r = run_point(sink, be, p);
        sink.add(be.series, static_cast<double>(b),
                 r.inserts_per_sec / 1e6, point_extras(r));
        *slot = r.lat.to_json();
      });
    }
  }

  const std::string table_c =
      "Streaming C: triangle counting on the same graph families";
  if (h.enabled("tc_emu") || h.enabled("tc_xeon")) {
    for (int i = 0; i < 2; ++i) {
      const graph::EdgeDist dist = dists[i];
      pool.submit([&h, &emu_cfg, &xeon_cfg, table_c, dist, i,
                   base](bench::PointSink& sink) {
        sink.table(table_c);
        const graph::Graph g =
            dist == graph::EdgeDist::uniform
                ? graph::make_uniform_random(base.num_vertices, 8.0,
                                             base.seed)
                : graph::make_rmat(h.quick() ? 9 : 11, 4, base.seed);
        if (h.enabled("tc_emu")) {
          kernels::TcEmuParams p;
          p.g = &g;
          const auto r =
              bench::repeated(h, [&] { return run_tc_emu(emu_cfg, p); });
          if (!r.verified) {
            sink.fail("tc_emu count mismatch vs reference");
          }
          sink.add_labeled(
              "tc_emu", to_string(dist), static_cast<double>(i), r.mteps,
              {{"sim_ms", to_seconds(r.elapsed) * 1e3},
               {"triangles", static_cast<double>(r.triangles)},
               {"migrations", static_cast<double>(r.migrations)}});
        }
        if (h.enabled("tc_xeon")) {
          kernels::TcXeonParams p;
          p.g = &g;
          const auto r =
              bench::repeated(h, [&] { return run_tc_xeon(xeon_cfg, p); });
          if (!r.verified) {
            sink.fail("tc_xeon count mismatch vs reference");
          }
          sink.add_labeled("tc_xeon", to_string(dist),
                           static_cast<double>(i), r.mteps,
                           {{"sim_ms", to_seconds(r.elapsed) * 1e3},
                            {"triangles", static_cast<double>(r.triangles)},
                            {"llc_hit_rate", r.llc_hit_rate}});
        }
      });
    }
  }

  pool.wait();

  report::Json lat = report::Json::object();
  for (auto& s : lat_slots) {
    if (!s.blob.is_null()) lat.set(s.key, std::move(s.blob));
  }
  h.set_latency(std::move(lat));
  return h.done();
}
