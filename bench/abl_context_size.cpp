// Ablation: thread context size vs migration performance.
//
// The Emu keeps contexts under 200 bytes (16 GP registers + PC + SP +
// status) precisely so migrations stay cheap.  This sweep grows the context
// and watches inter-node ping-pong and block-1 chasing on the 8-node
// full-speed system, where contexts actually cross the RapidIO fabric.
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/pingpong.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("abl_context_size", argc, argv);
  bench::record_config(h, emu::SystemConfig::fullspeed_multinode(8));
  h.axes("context_bytes", "rate");
  h.table(
      "Ablation: thread context size on the 8-node full-speed system "
      "(ping-pong M mig/s, chase block=1 MB/s)", 2);

  const std::vector<std::size_t> sizes =
      h.quick() ? std::vector<std::size_t>{200, 3200}
                : std::vector<std::size_t>{100, 200, 400, 800, 1600, 3200};
  bench::SweepPool pool(h);
  for (std::size_t bytes : sizes) {
    pool.submit([&h, bytes](bench::PointSink& sink) {
      auto cfg = emu::SystemConfig::fullspeed_multinode(8);
      cfg.thread_context_bytes = bytes;

      kernels::PingPongParams pp;
      pp.threads = 64;
      pp.round_trips = h.quick() ? 100 : 500;
      pp.nodelet_a = 0;
      pp.nodelet_b = cfg.nodelets_per_node;  // first nodelet of node 1
      const auto pr =
          bench::repeated(h, [&] { return kernels::run_pingpong(cfg, pp); });

      kernels::ChaseEmuParams cp;
      cp.n = h.quick() ? (1u << 14) : (1u << 16);
      cp.block = 1;
      cp.threads = h.quick() ? 256 : 1024;
      const auto cr =
          bench::repeated(h, [&] { return kernels::run_chase_emu(cfg, cp); });
      if (!cr.verified) sink.fail("chase verification failed");

      if (h.enabled("pingpong_internode_mps")) {
        sink.add("pingpong_internode_mps", static_cast<double>(bytes),
                 pr.migrations_per_sec / 1e6,
                 {{"sim_ms", to_seconds(pr.elapsed) * 1e3}});
      }
      if (h.enabled("chase_block1_mbps")) {
        sink.add("chase_block1_mbps", static_cast<double>(bytes),
                 cr.mb_per_sec, {{"sim_ms", to_seconds(cr.elapsed) * 1e3}});
      }
    });
  }
  pool.wait();
  return h.done();
}
