// Ablation: thread context size vs migration performance.
//
// The Emu keeps contexts under 200 bytes (16 GP registers + PC + SP +
// status) precisely so migrations stay cheap.  This sweep grows the context
// and watches inter-node ping-pong and block-1 chasing on the 8-node
// full-speed system, where contexts actually cross the RapidIO fabric.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/pingpong.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  report::CsvWriter csv(opt.csv_path,
                        {"ablation", "context_bytes", "internode_pingpong_mps",
                         "chase_block1_mbps"});

  report::Table t(
      "Ablation: thread context size on the 8-node full-speed system");
  t.columns({"context B", "inter-node ping-pong M mig/s",
             "chase block=1 MB/s"});

  const std::vector<std::size_t> sizes =
      opt.quick ? std::vector<std::size_t>{200, 3200}
                : std::vector<std::size_t>{100, 200, 400, 800, 1600, 3200};
  for (std::size_t bytes : sizes) {
    auto cfg = emu::SystemConfig::fullspeed_multinode(8);
    cfg.thread_context_bytes = bytes;

    kernels::PingPongParams pp;
    pp.threads = 64;
    pp.round_trips = opt.quick ? 100 : 500;
    pp.nodelet_a = 0;
    pp.nodelet_b = cfg.nodelets_per_node;  // first nodelet of node 1
    const auto pr = kernels::run_pingpong(cfg, pp);

    kernels::ChaseEmuParams cp;
    cp.n = opt.quick ? (1u << 14) : (1u << 16);
    cp.block = 1;
    cp.threads = opt.quick ? 256 : 1024;
    const auto cr = kernels::run_chase_emu(cfg, cp);
    if (!cr.verified) {
      std::fprintf(stderr, "FAIL: verification failed\n");
      return 1;
    }

    t.row({report::Table::integer(static_cast<long long>(bytes)),
           report::Table::num(pr.migrations_per_sec / 1e6, 2),
           report::Table::num(cr.mb_per_sec)});
    csv.row({"context_size", report::Table::integer(static_cast<long long>(bytes)),
             report::Table::num(pr.migrations_per_sec / 1e6, 3),
             report::Table::num(cr.mb_per_sec)});
  }
  t.print();
  return 0;
}
