// Extension: BFS on the Emu machine model over the paper's motivating graph
// shapes — a deep low-degree grid, a uniform random graph, and a skewed
// RMAT graph — on the Chick and the full-speed design point.
//
// BFS composes everything the paper characterizes: frontier spawn trees
// (Fig 5), fine-grained random access (Fig 6), and migration-bound edge
// relaxations (Fig 10); the RMAT hub vertices stress load balance the way
// streaming-graph workloads do.
#include <cstdio>

#include "bench_util.hpp"
#include "kernels/bfs_emu.hpp"
#include "kernels/bfs_xeon.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  report::CsvWriter csv(opt.csv_path, {"extension", "graph", "config",
                                       "mteps", "levels", "migrations"});

  struct Case {
    const char* name;
    graph::Graph g;
    std::size_t source;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 64x64", graph::make_grid_2d(opt.quick ? 16 : 64), 0});
  {
    auto g = graph::make_uniform_random(opt.quick ? 1000 : 16384, 16.0, 5);
    cases.push_back({"uniform n=16k d=16", std::move(g), 0});
  }
  {
    auto g = graph::make_rmat(opt.quick ? 9 : 13, 16, 5);
    std::size_t hub = 0;
    for (std::size_t v = 0; v < g.num_vertices; ++v) {
      if (g.degree(v) > g.degree(hub)) hub = v;
    }
    cases.push_back({"rmat scale=13 ef=16", std::move(g), hub});
  }

  report::Table t("Extension: BFS (MTEPS), Emu model vs Sandy Bridge Xeon");
  t.columns({"graph", "dir. edges", "chick_hw", "levels", "migr/edge",
             "fullspeed", "xeon(16thr)"});
  for (const auto& c : cases) {
    kernels::BfsEmuParams p;
    p.g = &c.g;
    p.source = c.source;
    const auto hw = kernels::run_bfs_emu(emu::SystemConfig::chick_hw(), p);
    const auto full =
        kernels::run_bfs_emu(emu::SystemConfig::chick_fullspeed(), p);
    kernels::BfsXeonParams xp;
    xp.g = &c.g;
    xp.source = c.source;
    xp.threads = 16;
    const auto xr =
        kernels::run_bfs_xeon(xeon::SystemConfig::sandy_bridge(), xp);
    if (!hw.verified || !full.verified || !xr.verified) {
      std::fprintf(stderr, "FAIL: BFS verification failed on %s\n", c.name);
      return 1;
    }
    t.row({c.name,
           report::Table::integer(
               static_cast<long long>(c.g.num_directed_edges())),
           report::Table::num(hw.mteps, 2), report::Table::integer(hw.levels),
           report::Table::num(static_cast<double>(hw.migrations) /
                                  static_cast<double>(c.g.num_directed_edges()),
                              2),
           report::Table::num(full.mteps, 2),
           report::Table::num(xr.mteps, 2)});
    csv.row({"bfs", c.name, "chick_hw", report::Table::num(hw.mteps, 3),
             report::Table::integer(hw.levels),
             report::Table::integer(static_cast<long long>(hw.migrations))});
    csv.row({"bfs", c.name, "chick_fullspeed",
             report::Table::num(full.mteps, 3),
             report::Table::integer(full.levels),
             report::Table::integer(static_cast<long long>(full.migrations))});
  }
  t.print();
  return 0;
}
