// Extension: BFS on the Emu machine model over the paper's motivating graph
// shapes — a deep low-degree grid, a uniform random graph, and a skewed
// RMAT graph — on the Chick and the full-speed design point.
//
// BFS composes everything the paper characterizes: frontier spawn trees
// (Fig 5), fine-grained random access (Fig 6), and migration-bound edge
// relaxations (Fig 10); the RMAT hub vertices stress load balance the way
// streaming-graph workloads do.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/bfs_emu.hpp"
#include "kernels/bfs_xeon.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("ext_bfs", argc, argv);
  bench::record_config(h, emu::SystemConfig::chick_hw(), "emu.");
  bench::record_config(h, xeon::SystemConfig::sandy_bridge(), "xeon.");
  h.axes("graph", "mteps");
  h.table("Extension: BFS (MTEPS), Emu model vs Sandy Bridge Xeon", 2);

  struct Case {
    const char* name;
    graph::Graph g;
    std::size_t source;
  };
  std::vector<Case> cases;
  cases.push_back({"grid", graph::make_grid_2d(h.quick() ? 16 : 64), 0});
  {
    auto g = graph::make_uniform_random(h.quick() ? 1000 : 16384, 16.0, 5);
    cases.push_back({"uniform", std::move(g), 0});
  }
  {
    auto g = graph::make_rmat(h.quick() ? 9 : 13, 16, 5);
    std::size_t hub = 0;
    for (std::size_t v = 0; v < g.num_vertices; ++v) {
      if (g.degree(v) > g.degree(hub)) hub = v;
    }
    cases.push_back({"rmat", std::move(g), hub});
  }

  // Configs recorded on the main thread before any job runs, so the
  // fingerprint matches the serial binary; the graphs are shared read-only.
  for (const auto& c : cases) {
    h.config(std::string(c.name) + "_directed_edges",
             static_cast<long long>(c.g.num_directed_edges()));
  }

  bench::SweepPool pool(h);
  double x = 0;
  for (const auto& c : cases) {
    pool.submit([&h, &c, x](bench::PointSink& sink) {
      const double edges = static_cast<double>(c.g.num_directed_edges());

      kernels::BfsEmuParams p;
      p.g = &c.g;
      p.source = c.source;
      const auto hw = bench::repeated(h, [&] {
        return kernels::run_bfs_emu(emu::SystemConfig::chick_hw(), p);
      });
      const auto full = bench::repeated(h, [&] {
        return kernels::run_bfs_emu(emu::SystemConfig::chick_fullspeed(), p);
      });
      kernels::BfsXeonParams xp;
      xp.g = &c.g;
      xp.source = c.source;
      xp.threads = 16;
      const auto xr = bench::repeated(h, [&] {
        return kernels::run_bfs_xeon(xeon::SystemConfig::sandy_bridge(), xp);
      });
      if (!hw.verified || !full.verified || !xr.verified) {
        sink.fail(std::string("BFS verification failed on ") + c.name);
      }

      if (h.enabled("chick_hw")) {
        sink.add_labeled("chick_hw", c.name, x, hw.mteps,
                         {{"levels", static_cast<double>(hw.levels)},
                          {"migrations_per_edge",
                           static_cast<double>(hw.migrations) / edges},
                          {"sim_ms", to_seconds(hw.elapsed) * 1e3}});
      }
      if (h.enabled("chick_fullspeed")) {
        sink.add_labeled("chick_fullspeed", c.name, x, full.mteps,
                         {{"levels", static_cast<double>(full.levels)},
                          {"sim_ms", to_seconds(full.elapsed) * 1e3}});
      }
      if (h.enabled("xeon16")) {
        sink.add_labeled("xeon16", c.name, x, xr.mteps,
                         {{"sim_ms", to_seconds(xr.elapsed) * 1e3}});
      }
    });
    x += 1;
  }
  pool.wait();
  return h.done();
}
