// Extension: MTTKRP (the CP-ALS inner kernel; ParTI motivation, paper §I)
// across layouts and rank — the tensor analogue of the paper's SpMV layout
// study.  Expected shape: 2D slice-partitioned layout far ahead of the 1D
// word-striped layout on the Emu (same mechanism as Fig 9a), with the
// Haswell comparison scaling with rank as arithmetic amortizes the stream.
#include <cstdio>

#include "bench_util.hpp"
#include "kernels/mttkrp.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  report::CsvWriter csv(opt.csv_path, {"extension", "impl", "rank", "mflops",
                                       "mb_per_sec", "migrations"});

  const std::size_t dim = opt.quick ? 64 : 256;
  const std::size_t nnz = opt.quick ? 4000 : 100000;
  const auto x = tensor::make_random_tensor(dim, dim, dim, nnz, 31);

  report::Table t("Extension: mode-0 MTTKRP, " + std::to_string(x.nnz()) +
                  " nonzeros, dims " + std::to_string(dim) + "^3");
  t.columns({"rank", "emu 1d Mflop/s", "emu 2d Mflop/s", "emu 2d migr",
             "haswell Mflop/s"});

  for (int rank : opt.quick ? std::vector<int>{8}
                            : std::vector<int>{4, 8, 16}) {
    kernels::MttkrpEmuParams ep;
    ep.x = &x;
    ep.rank = rank;
    ep.layout = kernels::MttkrpLayout::one_d;
    const auto one = kernels::run_mttkrp_emu(emu::SystemConfig::chick_hw(), ep);
    ep.layout = kernels::MttkrpLayout::two_d;
    const auto two = kernels::run_mttkrp_emu(emu::SystemConfig::chick_hw(), ep);

    kernels::MttkrpXeonParams xp;
    xp.x = &x;
    xp.rank = rank;
    xp.threads = 56;
    const auto hw = kernels::run_mttkrp_xeon(xeon::SystemConfig::haswell(), xp);

    if (!one.verified || !two.verified || !hw.verified) {
      std::fprintf(stderr, "FAIL: MTTKRP verification failed (rank %d)\n",
                   rank);
      return 1;
    }
    t.row({report::Table::integer(rank), report::Table::num(one.mflops, 1),
           report::Table::num(two.mflops, 1),
           report::Table::integer(static_cast<long long>(two.migrations)),
           report::Table::num(hw.mflops, 1)});
    csv.row({"mttkrp", "emu_1d", report::Table::integer(rank),
             report::Table::num(one.mflops, 2),
             report::Table::num(one.mb_per_sec, 2),
             report::Table::integer(static_cast<long long>(one.migrations))});
    csv.row({"mttkrp", "emu_2d", report::Table::integer(rank),
             report::Table::num(two.mflops, 2),
             report::Table::num(two.mb_per_sec, 2),
             report::Table::integer(static_cast<long long>(two.migrations))});
    csv.row({"mttkrp", "haswell", report::Table::integer(rank),
             report::Table::num(hw.mflops, 2),
             report::Table::num(hw.mb_per_sec, 2), "0"});
  }
  t.print();
  return 0;
}
