// Extension: MTTKRP (the CP-ALS inner kernel; ParTI motivation, paper §I)
// across layouts and rank — the tensor analogue of the paper's SpMV layout
// study.  Expected shape: 2D slice-partitioned layout far ahead of the 1D
// word-striped layout on the Emu (same mechanism as Fig 9a), with the
// Haswell comparison scaling with rank as arithmetic amortizes the stream.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/mttkrp.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("ext_mttkrp", argc, argv);
  bench::record_config(h, emu::SystemConfig::chick_hw(), "emu.");
  bench::record_config(h, xeon::SystemConfig::haswell(), "xeon.");

  const std::size_t dim = h.quick() ? 64 : 256;
  const std::size_t nnz = h.quick() ? 4000 : 100000;
  const auto x = tensor::make_random_tensor(dim, dim, dim, nnz, 31);
  h.config("dim", static_cast<long long>(dim));
  h.config("nnz", static_cast<long long>(x.nnz()));
  h.axes("rank", "mflops");
  h.table("Extension: mode-0 MTTKRP, " + std::to_string(x.nnz()) +
          " nonzeros, dims " + std::to_string(dim) + "^3");

  bench::SweepPool pool(h);
  for (int rank : h.quick() ? std::vector<int>{8}
                            : std::vector<int>{4, 8, 16}) {
    // The tensor lives on the main thread for the whole sweep; jobs only
    // read it.
    pool.submit([&h, &x, rank](bench::PointSink& sink) {
      kernels::MttkrpEmuParams ep;
      ep.x = &x;
      ep.rank = rank;
      ep.layout = kernels::MttkrpLayout::one_d;
      const auto one = bench::repeated(h, [&] {
        return kernels::run_mttkrp_emu(emu::SystemConfig::chick_hw(), ep);
      });
      kernels::MttkrpEmuParams ep2 = ep;
      ep2.layout = kernels::MttkrpLayout::two_d;
      const auto two = bench::repeated(h, [&] {
        return kernels::run_mttkrp_emu(emu::SystemConfig::chick_hw(), ep2);
      });

      kernels::MttkrpXeonParams xp;
      xp.x = &x;
      xp.rank = rank;
      xp.threads = 56;
      const auto hw = bench::repeated(h, [&] {
        return kernels::run_mttkrp_xeon(xeon::SystemConfig::haswell(), xp);
      });

      if (!one.verified || !two.verified || !hw.verified) {
        sink.fail("MTTKRP verification failed (rank " + std::to_string(rank) +
                  ")");
      }
      if (h.enabled("emu_1d")) {
        sink.add("emu_1d", rank, one.mflops,
                 {{"mb_per_sec", one.mb_per_sec},
                  {"migrations", static_cast<double>(one.migrations)},
                  {"sim_ms", to_seconds(one.elapsed) * 1e3}});
      }
      if (h.enabled("emu_2d")) {
        sink.add("emu_2d", rank, two.mflops,
                 {{"mb_per_sec", two.mb_per_sec},
                  {"migrations", static_cast<double>(two.migrations)},
                  {"sim_ms", to_seconds(two.elapsed) * 1e3}});
      }
      if (h.enabled("haswell")) {
        sink.add("haswell", rank, hw.mflops,
                 {{"mb_per_sec", hw.mb_per_sec},
                  {"sim_ms", to_seconds(hw.elapsed) * 1e3}});
      }
    });
  }
  pool.wait();
  return h.done();
}
