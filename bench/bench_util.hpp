// Shared harness for the figure-regeneration benches.  Every binary accepts
// the same flags, registers its series with the harness, and gets table
// printing, tidy CSV, and schema-versioned JSON (docs/RESULTS.md) for free:
//
//   --csv <path>     tidy CSV (bench, series, x, y, extra metrics)
//   --json <path>    machine-readable result (consumed by tools/shapecheck
//                    and tools/benchdiff)
//   --quick          smaller problem sizes / fewer sweep points (CI mode)
//   --filter <str>   run only series whose name contains <str>
//   --reps <n>       repeat each kernel invocation n times (the simulator is
//                    deterministic, so this exercises wall-clock stability;
//                    duplicate points are averaged with a stable sum/count
//                    accumulation, so the average is order-independent)
//   --jobs <n>       run sweep points on n worker threads (default: the
//                    host's hardware concurrency).  Output is byte-identical
//                    to --jobs 1 apart from wall-clock fields: points merge
//                    into the result in submission order regardless of
//                    completion order (bench/sweep_pool.hpp)
//   --engine-threads <n>
//                    run each simulation point's engine shards on n worker
//                    threads (default 1 = serial).  Like --jobs, the
//                    output is byte-identical to serial apart from
//                    wall-clock fields (src/sim/shard.hpp); the two flags
//                    compose (jobs x engine-threads worker threads total)
//   --engine-shard {node|nodelet}
//                    engine shard granularity (default node: one shard per
//                    node card).  nodelet shards per nodelet under
//                    two-level windows, so --engine-threads can scale to
//                    the nodelet count; within either granularity the
//                    thread count never changes results.  The two
//                    granularities are distinct machine models (intra-node
//                    cross-nodelet deliveries pay the crossbar hop under
//                    nodelet sharding), so their outputs are not expected
//                    to match each other bit-for-bit
//   --trace <path>   export the newest simulated run as Chrome/Perfetto
//                    trace-event JSON (load at https://ui.perfetto.dev or
//                    summarize with tools/traceview)
//   --trace-cap <n>  trace ring-buffer capacity in records (default 65536;
//                    long runs keep the newest n events)
//   --counters       embed per-phase counter deltas (per-nodelet traffic,
//                    migration matrix, row-hit rate) in the result JSON
//   --help           usage
//
// Value flags accept both "--flag value" and "--flag=value".  Unknown flags
// and flags missing their argument are usage errors: the harness prints
// usage and the binary exits with status 2.  See docs/OBSERVABILITY.md for
// the --trace/--counters output formats and truncation guarantees.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "report/results.hpp"

namespace emusim::emu {
struct SystemConfig;
}
namespace emusim::xeon {
struct SystemConfig;
}
namespace emusim::report {
class BenchObserver;
}

namespace emusim::bench {

struct Options {
  std::string csv_path;
  std::string json_path;
  bool quick = false;
  std::string filter;
  int reps = 1;
  /// Worker threads for the sweep pool; 0 = auto (hardware_concurrency).
  /// Deliberately excluded from the config fingerprint: any --jobs value
  /// produces the same simulated results.
  int jobs = 0;
  /// Worker threads for each point's sharded engine (1 = serial).  Also
  /// excluded from the config fingerprint: like --jobs, any value produces
  /// the same simulated results.
  int engine_threads = 1;
  /// Engine shard granularity: "node" (default) or "nodelet" (per-nodelet
  /// shards under two-level windows; see src/sim/shard.hpp).  Excluded from
  /// the config fingerprint like --engine-threads: the determinism contract
  /// (thread count never changes results) holds within each granularity.
  std::string engine_shard = "node";
  std::string trace_path;
  int trace_cap = 1 << 16;
  bool counters = false;
  bool help = false;
  /// Flags matching the passthrough prefix (e.g. "--benchmark_" for the
  /// google-benchmark binary), preserved verbatim for the wrapped tool.
  std::vector<std::string> passthrough;
};

std::string usage(const std::string& bench_name);

/// Parse argv.  Returns false with a diagnostic in `*err` on unknown flags,
/// missing arguments, or malformed values — callers must treat that as a
/// usage error, not a best-effort run.
bool parse_options(int argc, char** argv, Options* out, std::string* err,
                   const std::string& passthrough_prefix = "");

/// One bench run: parses flags (exiting on bad usage), collects series
/// points, and on done() prints per-table pivots and writes CSV/JSON.
class Harness {
 public:
  /// `passthrough_prefix` as in parse_options.  Prints usage and exits(2)
  /// on a flag error; exits(0) after printing usage for --help.
  Harness(std::string bench_name, int argc, char** argv,
          const std::string& passthrough_prefix = "");
  ~Harness();

  const Options& opt() const { return opt_; }
  bool quick() const { return opt_.quick; }
  int reps() const { return opt_.reps; }
  /// Resolved --jobs value: the flag, or hardware_concurrency (min 1) when
  /// the flag was not given.
  int jobs() const;

  /// Axis names recorded in the JSON schema (e.g. "threads", "mb_per_sec").
  void axes(std::string x, std::string y);

  /// Record one config fingerprint key (machine parameters, problem sizes).
  void config(const std::string& key, std::string value);
  void config(const std::string& key, long long value);

  /// Series-name filter from --filter (substring match; empty = all).
  bool enabled(const std::string& series) const;

  /// Start (or re-select) a display table; subsequent series registrations
  /// attach to it.  `precision` is the decimal places for y cells.
  void table(const std::string& title, int precision = 1);

  /// Add one measurement.  Points with an equal (series, x) are averaged —
  /// this is what makes --reps loops safe to run over the same sweep.  An
  /// extra named "sim_ms" also accumulates into the result's sim_seconds.
  void add(const std::string& series, double x, double y,
           std::vector<std::pair<std::string, double>> extra = {});

  /// Categorical variant: the point is identified by `label`; `x` is its
  /// ordinal position (used only for display ordering).
  void add_labeled(const std::string& series, const std::string& label,
                   double x, double y,
                   std::vector<std::pair<std::string, double>> extra = {});

  /// Print FAIL: <msg> and exit(1).  Benches call this when a kernel's
  /// self-verification fails — results after a failed run are meaningless.
  [[noreturn]] void fail(const std::string& msg);

  /// Print tables, write CSV/JSON as requested.  Returns the process exit
  /// code: 0, or 1 when a requested output file could not be written.
  int done();

  const report::BenchResult& result() const { return result_; }

  /// Mark the y metric as wall-clock-derived (host throughput): the result
  /// JSON gets "y_wall_clock": true and tools/benchdiff reports but never
  /// gates on it.  micro_simcore uses this; simulated-metric benches don't.
  void mark_wall_clock_y() { result_.y_wall_clock = true; }

  /// Attach the tail-latency blob ("series/label" -> histogram JSON) that
  /// serving benches emit alongside their points.  Stored under the
  /// result's additive "latency" key.
  void set_latency(report::Json blob) {
    result_.latency = std::move(blob);
  }

  /// The --trace/--counters observer, or nullptr when neither flag is set.
  /// SweepPool folds per-job observers into this one at the merge barrier.
  report::BenchObserver* observer() { return observer_.get(); }

 private:
  struct TableGroup {
    std::string title;
    int precision = 1;
    std::vector<std::size_t> series_idx;  ///< indices into result_.series
  };

  /// Per-point stable accumulator: duplicate (series, x) adds keep the raw
  /// sum and count, and the stored point is sum/count — the same value in
  /// any add order, unlike a running mean.
  struct PointAccum {
    double y_sum = 0.0;
    std::vector<double> extra_sums;  ///< aligned with the point's extra
    int n = 0;
  };

  report::ResultSeries& series_slot(const std::string& name);
  void print_tables() const;
  bool write_csv() const;
  /// Label counter deltas from runs since the last add() with this point's
  /// phase name and collect them for the result's observe blob.
  void absorb_pending_counters(const std::string& series,
                               const std::string& phase_key);
  bool finish_observe();

  std::string name_;
  Options opt_;
  report::BenchResult result_;
  std::vector<TableGroup> tables_;
  std::size_t current_table_ = 0;
  /// Per-point accumulators, aligned with result_.series[i].points.
  std::vector<std::vector<PointAccum>> accums_;
  double start_wall_ = 0.0;
  /// Installed when --trace/--counters is active (docs/OBSERVABILITY.md).
  std::unique_ptr<report::BenchObserver> observer_;
  report::Json observe_counters_;  ///< array of labeled per-phase deltas
};

/// Record a machine config into the harness fingerprint (prefix
/// distinguishes multiple configs in one bench, e.g. "hw." vs "sim.").
void record_config(Harness& h, const emu::SystemConfig& cfg,
                   const std::string& prefix = "");
void record_config(Harness& h, const xeon::SystemConfig& cfg,
                   const std::string& prefix = "");

/// Run `fn` 1 + (reps-1) times and return the last result: `--reps` makes
/// wall-clock profiles stable while the deterministic sim result is
/// unchanged.
template <class Fn>
auto repeated(const Harness& h, Fn&& fn) {
  auto r = fn();
  for (int i = 1; i < h.reps(); ++i) r = fn();
  return r;
}

}  // namespace emusim::bench
