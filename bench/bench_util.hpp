// Shared plumbing for the figure-regeneration harnesses: flag parsing and
// common output conventions.  Every binary supports:
//   --csv <path>   write the series as tidy CSV in addition to the table
//   --quick        smaller problem sizes / fewer sweep points (CI mode)
#pragma once

#include <cstring>
#include <string>

namespace emusim::bench {

struct Options {
  std::string csv_path;
  bool quick = false;
};

inline Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      o.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      o.quick = true;
    }
  }
  return o;
}

}  // namespace emusim::bench
