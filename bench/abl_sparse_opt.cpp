// Sparse-optimization ablation: cache blocking and degree-based reordering
// applied to SpMV (and, report-only, MTTKRP) on both machine models — the
// Rolinger-style question of whether cache-machine optimizations carry over
// to the migratory machine.
//
//   * Tables A/B run the same integer-valued matrix through all three
//     SpmvPlan layouts (csr / blocked / reordered) per backend and skew.
//     On the Xeon the ablation runs against a capacity-reduced LLC (the
//     x-vector footprint exceeds it at simulable scale, preserving the
//     real machines' x-to-LLC capacity ratio), so blocking and — under
//     RMAT skew — hub-clustering reordering pay off: gated ratio_gt 1.1x.
//     On the Emu every nonzero migrates regardless of order, so both
//     transforms are flat to mildly harmful: gated ratio_between
//     [0.8, 1.1].  y is bit-identical across layouts by construction.
//   * Table C repeats a slice on the 2-node machine (sharded-engine
//     determinism coverage for --engine-threads); full mode adds a
//     256-nodelet slice for the weekly sweep, sized for per-nodelet
//     sharding (--engine-shard=nodelet).
//   * Table D reorders a COO tensor's mode-0 slices by size and reruns the
//     existing MTTKRP kernels — report-only.
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/sparse_opt.hpp"
#include "sweep_pool.hpp"
#include "tensor/coo.hpp"

using namespace emusim;
using kernels::SparseLayout;

namespace {

std::vector<std::pair<std::string, double>> point_extras(
    const kernels::SparseOptResult& r, std::size_t segments) {
  return {{"sim_ms", to_seconds(r.elapsed) * 1e3},
          {"mb_per_sec", r.mb_per_sec},
          {"segments", static_cast<double>(segments)},
          {"migrations", static_cast<double>(r.migrations)},
          {"llc_hit_rate", r.llc_hit_rate}};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("abl_sparse_opt", argc, argv);
  const auto emu_cfg = emu::SystemConfig::chick_hw();
  const auto emu2_cfg = emu::SystemConfig::fullspeed_multinode(2);
  // Full-mode only: a 256-nodelet slice for the weekly sweep, sized for the
  // sub-node sharded engine (--engine-shard=nodelet scales to 256 shards).
  const auto emu256_cfg = emu::SystemConfig::chick_fullspeed_nx(256);

  // The ablation Xeon: sandy_bridge with the LLC shrunk so the x vector
  // (2x the LLC) thrashes under CSR while one column block (a quarter of
  // the LLC) stays resident — the capacity ratio of the full-size machine
  // at a DES-tractable matrix size.
  auto xeon_cfg = xeon::SystemConfig::sandy_bridge();
  xeon_cfg.llc_bytes = h.quick() ? (128u << 10) : (256u << 10);
  xeon_cfg.llc_ways = 16;

  const std::size_t xeon_n = h.quick() ? (1u << 15) : (1u << 16);
  const std::size_t emu_n = h.quick() ? (1u << 10) : (1u << 12);
  const double avg_degree = h.quick() ? 6.0 : 8.0;
  const std::size_t xeon_block = xeon_cfg.llc_bytes / 4 / 8;  // quarter LLC
  const std::size_t emu_block = emu_n / 4;
  const std::uint64_t seed = 17;

  bench::record_config(h, emu_cfg, "emu.");
  bench::record_config(h, emu2_cfg, "emu2.");
  // Quick baselines predate the 256-nodelet slice; keep their fingerprint
  // byte-stable by recording it only when the slice actually runs.
  if (!h.quick()) bench::record_config(h, emu256_cfg, "emu256.");
  bench::record_config(h, xeon_cfg, "xeon.");
  h.config("xeon_rows", static_cast<long long>(xeon_n));
  h.config("emu_rows", static_cast<long long>(emu_n));
  h.config("avg_degree", static_cast<long long>(avg_degree));
  h.config("xeon_block_cols", static_cast<long long>(xeon_block));
  h.config("emu_block_cols", static_cast<long long>(emu_block));
  h.config("seed", static_cast<long long>(seed));
  h.axes("layout", "mflops");

  bench::SweepPool pool(h);

  const SparseLayout layouts[3] = {SparseLayout::csr, SparseLayout::blocked,
                                   SparseLayout::reordered};
  const graph::EdgeDist dists[2] = {graph::EdgeDist::uniform,
                                    graph::EdgeDist::rmat};

  const std::string table_a =
      "Sparse ablation A: SpMV layouts on the cache machine (reduced LLC)";
  const std::string table_b =
      "Sparse ablation B: SpMV layouts on the migratory machine";
  const std::string table_c =
      "Sparse ablation C: multi-node migratory slices (sharded engine)";

  struct Arm {
    std::string series;
    std::string table;
    bool is_emu;
    const emu::SystemConfig* emu;
    graph::EdgeDist dist;
  };
  std::vector<Arm> arms;
  for (const graph::EdgeDist d : dists) {
    arms.push_back({std::string("xeon_") + to_string(d), table_a, false,
                    nullptr, d});
    arms.push_back({std::string("emu_") + to_string(d), table_b, true,
                    &emu_cfg, d});
  }
  arms.push_back({"emu2_rmat", table_c, true, &emu2_cfg,
                  graph::EdgeDist::rmat});
  // The 256-nodelet slice is full-mode only: 32 node cards is weekly-sweep
  // territory, and it is the arm the sub-node sharded engine is sized for.
  if (!h.quick()) {
    arms.push_back({"emu256_rmat", table_c, true, &emu256_cfg,
                    graph::EdgeDist::rmat});
  }

  for (const Arm& arm : arms) {
    if (!h.enabled(arm.series)) continue;
    for (int li = 0; li < 3; ++li) {
      const SparseLayout layout = layouts[li];
      // The multi-node slices need only the csr/blocked pair.
      if ((arm.series == "emu2_rmat" || arm.series == "emu256_rmat") &&
          layout == SparseLayout::reordered) {
        continue;
      }
      pool.submit([&h, &xeon_cfg, arm, layout, li, xeon_n, emu_n,
                   avg_degree, xeon_block, emu_block,
                   seed](bench::PointSink& sink) {
        sink.table(arm.table);
        const std::size_t n = arm.is_emu ? emu_n : xeon_n;
        const auto a =
            kernels::make_sparse_matrix(n, avg_degree, arm.dist, seed);
        const auto x = kernels::make_int_x(n, seed + 1);
        const auto plan = kernels::build_plan(
            a, x, layout, arm.is_emu ? emu_block : xeon_block);
        kernels::SparseOptParams p;
        p.plan = &plan;
        const auto r = bench::repeated(h, [&] {
          return arm.is_emu ? run_sparse_emu(*arm.emu, p)
                            : run_sparse_xeon(xeon_cfg, p);
        });
        if (!r.verified) {
          sink.fail(arm.series + "/" + to_string(layout) +
                    ": y mismatch vs plan reference");
        }
        if (r.y != kernels::sparse_reference(a, x)) {
          sink.fail(arm.series + "/" + to_string(layout) +
                    ": y not bit-identical to the CSR reference");
        }
        sink.add_labeled(arm.series, to_string(layout),
                         static_cast<double>(li), r.mflops,
                         point_extras(r, plan.segments.size()));
      });
    }
  }

  const std::string table_d =
      "Sparse ablation D: MTTKRP mode-0 slice reordering (report-only)";
  if (h.enabled("mttkrp_emu") || h.enabled("mttkrp_xeon")) {
    pool.submit([&h, &emu_cfg, &xeon_cfg, table_d,
                 seed](bench::PointSink& sink) {
      sink.table(table_d);
      const std::size_t dim = h.quick() ? 256 : 1024;
      const std::size_t nnz = h.quick() ? (1u << 13) : (1u << 15);
      const auto t0 = tensor::make_random_tensor(dim, dim, dim, nnz, seed);
      const auto t1 = kernels::reorder_mode0_by_slice(t0);
      const tensor::CooTensor* tensors[2] = {&t0, &t1};
      const char* labels[2] = {"orig", "reordered"};
      for (int i = 0; i < 2; ++i) {
        if (h.enabled("mttkrp_emu")) {
          kernels::MttkrpEmuParams p;
          p.x = tensors[i];
          const auto r = bench::repeated(
              h, [&] { return run_mttkrp_emu(emu_cfg, p); });
          if (!r.verified) sink.fail("mttkrp_emu verification failed");
          sink.add_labeled("mttkrp_emu", labels[i], static_cast<double>(i),
                           r.mflops,
                           {{"sim_ms", to_seconds(r.elapsed) * 1e3},
                            {"migrations",
                             static_cast<double>(r.migrations)}});
        }
        if (h.enabled("mttkrp_xeon")) {
          kernels::MttkrpXeonParams p;
          p.x = tensors[i];
          p.threads = 16;
          const auto r = bench::repeated(
              h, [&] { return run_mttkrp_xeon(xeon_cfg, p); });
          if (!r.verified) sink.fail("mttkrp_xeon verification failed");
          sink.add_labeled("mttkrp_xeon", labels[i], static_cast<double>(i),
                           r.mflops,
                           {{"sim_ms", to_seconds(r.elapsed) * 1e3}});
        }
      }
    });
  }

  pool.wait();
  return h.done();
}
