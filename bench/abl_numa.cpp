// Ablation: NUMA socket penalty on the Xeon comparison platform.
//
// The paper runs SpMV with numactl --interleave=0-3, so most accesses cross
// sockets.  This sweep varies the remote-socket hop latency and reruns the
// latency-sensitive benchmarks — quantifying how much of the Xeon's chase
// deficit is NUMA rather than DRAM-intrinsic (answer: some, but the
// line/row effects dominate).
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/spmv_xeon.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("abl_numa", argc, argv);
  bench::record_config(h, xeon::SystemConfig::sandy_bridge(), "snb.");
  bench::record_config(h, xeon::SystemConfig::haswell(), "hsw.");
  h.axes("hop_ns", "mb_per_sec");
  h.table(
      "Ablation: remote-socket hop latency (interleaved memory) vs "
      "latency-bound benchmarks — MB/s");

  bench::SweepPool pool(h);
  for (double hop_ns : h.quick() ? std::vector<double>{50}
                                 : std::vector<double>{0, 25, 50, 100, 200}) {
    pool.submit([&h, hop_ns](bench::PointSink& sink) {
      auto snb = xeon::SystemConfig::sandy_bridge();
      snb.remote_socket_latency = ns(hop_ns);
      kernels::ChaseXeonParams cp;
      cp.n = h.quick() ? (1u << 16) : (std::size_t{1} << 21);
      cp.block = 64;
      cp.threads = 32;
      const auto cr =
          bench::repeated(h, [&] { return kernels::run_chase_xeon(snb, cp); });

      auto hsw = xeon::SystemConfig::haswell();
      hsw.remote_socket_latency = ns(hop_ns);
      kernels::SpmvXeonParams sp;
      sp.laplacian_n = h.quick() ? 50 : 200;
      sp.impl = kernels::SpmvXeonImpl::mkl;
      const auto sr =
          bench::repeated(h, [&] { return kernels::run_spmv_xeon(hsw, sp); });

      if (!cr.verified || !sr.verified) sink.fail("verification failed");
      if (h.enabled("chase_block64")) {
        sink.add("chase_block64", hop_ns, cr.mb_per_sec,
                 {{"sim_ms", to_seconds(cr.elapsed) * 1e3}});
      }
      if (h.enabled("spmv_mkl")) {
        sink.add("spmv_mkl", hop_ns, sr.mb_per_sec,
                 {{"sim_ms", to_seconds(sr.elapsed) * 1e3}});
      }
    });
  }
  pool.wait();
  return h.done();
}
