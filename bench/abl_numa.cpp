// Ablation: NUMA socket penalty on the Xeon comparison platform.
//
// The paper runs SpMV with numactl --interleave=0-3, so most accesses cross
// sockets.  This sweep varies the remote-socket hop latency and reruns the
// latency-sensitive benchmarks — quantifying how much of the Xeon's chase
// deficit is NUMA rather than DRAM-intrinsic (answer: some, but the
// line/row effects dominate).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/spmv_xeon.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  report::CsvWriter csv(opt.csv_path,
                        {"ablation", "remote_ns", "chase_mbps", "spmv_mbps"});

  report::Table t(
      "Ablation: remote-socket hop latency (interleaved memory) vs "
      "latency-bound benchmarks");
  t.columns({"hop (ns)", "chase block=64 MB/s", "SpMV mkl MB/s"});

  for (double hop_ns : opt.quick ? std::vector<double>{50}
                                 : std::vector<double>{0, 25, 50, 100, 200}) {
    auto snb = xeon::SystemConfig::sandy_bridge();
    snb.remote_socket_latency = ns(hop_ns);
    kernels::ChaseXeonParams cp;
    cp.n = opt.quick ? (1u << 16) : (std::size_t{1} << 21);
    cp.block = 64;
    cp.threads = 32;
    const auto cr = kernels::run_chase_xeon(snb, cp);

    auto hsw = xeon::SystemConfig::haswell();
    hsw.remote_socket_latency = ns(hop_ns);
    kernels::SpmvXeonParams sp;
    sp.laplacian_n = opt.quick ? 50 : 200;
    sp.impl = kernels::SpmvXeonImpl::mkl;
    const auto sr = kernels::run_spmv_xeon(hsw, sp);

    if (!cr.verified || !sr.verified) {
      std::fprintf(stderr, "FAIL: verification failed\n");
      return 1;
    }
    t.row({report::Table::num(hop_ns, 0), report::Table::num(cr.mb_per_sec),
           report::Table::num(sr.mb_per_sec)});
    csv.row({"numa", report::Table::num(hop_ns, 0),
             report::Table::num(cr.mb_per_sec),
             report::Table::num(sr.mb_per_sec)});
  }
  t.print();
  return 0;
}
