// Figure 7: pointer chasing on the Sandy Bridge Xeon — bandwidth vs block
// size for several thread counts (full_block_shuffle) and by shuffle mode.
//
// Paper shape: strong locality sensitivity.  Small blocks waste most of
// each 64 B line and thrash DRAM rows; the best performance comes at block
// sizes of 256-4096 elements (≈ one 8 KiB DRAM page); performance declines
// as blocks grow beyond a page.  Peak utilization stays under ~25% of the
// machine's STREAM bandwidth (Fig 8).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_xeon.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;
using kernels::ChaseXeonParams;
using kernels::ShuffleMode;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto cfg = xeon::SystemConfig::sandy_bridge();
  // The list must be much larger than the LLC or the single-pass reuse of
  // the 4 elements per line is absorbed by the cache (the paper's lists are
  // DRAM-resident).
  const std::size_t n = opt.quick ? (1u << 16) : (std::size_t{1} << 22);

  report::CsvWriter csv(opt.csv_path,
                        {"figure", "mode", "threads", "block", "mb_per_sec",
                         "llc_hit_rate", "row_miss_fraction"});

  const std::vector<int> thread_counts =
      opt.quick ? std::vector<int>{4, 32} : std::vector<int>{1, 8, 16, 32};
  const std::vector<std::size_t> blocks =
      opt.quick
          ? std::vector<std::size_t>{1, 64, 1024, 16384}
          : std::vector<std::size_t>{1,   4,    16,   64,   256,  1024,
                                     4096, 16384, 65536};

  report::Table t1(
      "Fig 7a: Pointer chasing, Sandy Bridge Xeon, full_block_shuffle — "
      "MB/s vs block size");
  {
    std::vector<std::string> hdr = {"block"};
    for (int t : thread_counts) hdr.push_back(std::to_string(t) + " thr");
    t1.columns(hdr);
  }
  for (std::size_t b : blocks) {
    std::vector<std::string> cells = {
        report::Table::integer(static_cast<long long>(b))};
    for (int t : thread_counts) {
      if (n / b < static_cast<std::size_t>(t)) {
        cells.push_back("-");
        continue;
      }
      ChaseXeonParams p;
      p.n = n;
      p.block = b;
      p.threads = t;
      p.mode = ShuffleMode::full_block_shuffle;
      const auto r = kernels::run_chase_xeon(cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: chase verification failed\n");
        return 1;
      }
      cells.push_back(report::Table::num(r.mb_per_sec));
      const double miss_frac =
          r.row_hits + r.row_misses
              ? static_cast<double>(r.row_misses) /
                    static_cast<double>(r.row_hits + r.row_misses)
              : 0.0;
      csv.row({"fig7", to_string(p.mode), report::Table::integer(t),
               report::Table::integer(static_cast<long long>(b)),
               report::Table::num(r.mb_per_sec),
               report::Table::num(r.llc_hit_rate, 3),
               report::Table::num(miss_frac, 3)});
    }
    t1.row(cells);
  }
  t1.print();

  report::Table t2(
      "Fig 7b: Pointer chasing, Sandy Bridge Xeon, 32 threads — MB/s by "
      "shuffle mode");
  t2.columns({"block", "intra_block", "block", "full_block"});
  const ShuffleMode modes[3] = {ShuffleMode::intra_block_shuffle,
                                ShuffleMode::block_shuffle,
                                ShuffleMode::full_block_shuffle};
  const int top_threads = opt.quick ? 4 : 32;
  for (std::size_t b : blocks) {
    if (n / b < static_cast<std::size_t>(top_threads)) continue;
    std::vector<std::string> cells = {
        report::Table::integer(static_cast<long long>(b))};
    for (auto mode : modes) {
      ChaseXeonParams p;
      p.n = n;
      p.block = b;
      p.threads = top_threads;
      p.mode = mode;
      const auto r = kernels::run_chase_xeon(cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: chase verification failed\n");
        return 1;
      }
      cells.push_back(report::Table::num(r.mb_per_sec));
      csv.row({"fig7", to_string(mode), report::Table::integer(top_threads),
               report::Table::integer(static_cast<long long>(b)),
               report::Table::num(r.mb_per_sec),
               report::Table::num(r.llc_hit_rate, 3), ""});
    }
    t2.row(cells);
  }
  t2.print();
  return 0;
}
