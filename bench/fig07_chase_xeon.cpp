// Figure 7: pointer chasing on the Sandy Bridge Xeon — bandwidth vs block
// size for several thread counts (full_block_shuffle) and by shuffle mode.
//
// Paper shape: strong locality sensitivity.  Small blocks waste most of
// each 64 B line and thrash DRAM rows; the best performance comes at block
// sizes of 256-4096 elements (≈ one 8 KiB DRAM page); performance declines
// as blocks grow beyond a page.  Peak utilization stays under ~25% of the
// machine's STREAM bandwidth (Fig 8).
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_xeon.hpp"
#include "sweep_pool.hpp"

using namespace emusim;
using kernels::ChaseXeonParams;
using kernels::ShuffleMode;

int main(int argc, char** argv) {
  bench::Harness h("fig07_chase_xeon", argc, argv);
  const auto cfg = xeon::SystemConfig::sandy_bridge();
  // The list must be much larger than the LLC or the single-pass reuse of
  // the 4 elements per line is absorbed by the cache (the paper's lists are
  // DRAM-resident).  Quick mode keeps that property at ~2x the LLC.
  const std::size_t n = h.quick() ? (std::size_t{1} << 21)
                                  : (std::size_t{1} << 22);
  bench::record_config(h, cfg);
  h.config("n", static_cast<long long>(n));
  h.axes("block", "mb_per_sec");

  const std::vector<int> thread_counts =
      h.quick() ? std::vector<int>{4, 32} : std::vector<int>{1, 8, 16, 32};
  const std::vector<std::size_t> blocks =
      h.quick()
          ? std::vector<std::size_t>{1, 64, 1024, 16384}
          : std::vector<std::size_t>{1,   4,    16,   64,   256,  1024,
                                     4096, 16384, 65536};

  auto run = [&h, &cfg, n](bench::PointSink& sink, std::size_t block,
                           int threads, ShuffleMode mode) {
    ChaseXeonParams p;
    p.n = n;
    p.block = block;
    p.threads = threads;
    p.mode = mode;
    const auto r =
        bench::repeated(h, [&] { return kernels::run_chase_xeon(cfg, p); });
    if (!r.verified) sink.fail("chase verification failed");
    return r;
  };
  auto extras = [](const kernels::ChaseXeonResult& r) {
    const double accesses =
        static_cast<double>(r.row_hits) + static_cast<double>(r.row_misses);
    return std::vector<std::pair<std::string, double>>{
        {"sim_ms", to_seconds(r.elapsed) * 1e3},
        {"llc_hit_rate", r.llc_hit_rate},
        {"row_miss_fraction",
         accesses > 0 ? static_cast<double>(r.row_misses) / accesses : 0.0}};
  };

  bench::SweepPool pool(h);
  const std::string table_a =
      "Fig 7a: Pointer chasing, Sandy Bridge Xeon, full_block_shuffle — "
      "MB/s vs block size";
  for (std::size_t b : blocks) {
    for (int t : thread_counts) {
      const std::string series = "t" + std::to_string(t);
      if (!h.enabled(series)) continue;
      if (n / b < static_cast<std::size_t>(t)) continue;
      pool.submit(
          [&run, &extras, table_a, series, b, t](bench::PointSink& sink) {
            sink.table(table_a);
            const auto r = run(sink, b, t, ShuffleMode::full_block_shuffle);
            sink.add(series, static_cast<double>(b), r.mb_per_sec, extras(r));
          });
    }
  }

  const int top_threads = h.quick() ? 4 : 32;
  h.config("top_threads", static_cast<long long>(top_threads));
  const std::string table_b =
      "Fig 7b: Pointer chasing, Sandy Bridge Xeon, top threads — MB/s "
      "by shuffle mode";
  const ShuffleMode modes[3] = {ShuffleMode::intra_block_shuffle,
                                ShuffleMode::block_shuffle,
                                ShuffleMode::full_block_shuffle};
  for (std::size_t b : blocks) {
    if (n / b < static_cast<std::size_t>(top_threads)) continue;
    for (auto mode : modes) {
      if (!h.enabled(to_string(mode))) continue;
      pool.submit([&run, &extras, table_b, b, top_threads,
                   mode](bench::PointSink& sink) {
        sink.table(table_b);
        const auto r = run(sink, b, top_threads, mode);
        sink.add(to_string(mode), static_cast<double>(b), r.mb_per_sec,
                 extras(r));
      });
    }
  }
  pool.wait();
  return h.done();
}
