#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "emu/config.hpp"
#include "emu/machine.hpp"
#include "report/csv.hpp"
#include "report/observe.hpp"
#include "report/table.hpp"
#include "xeon/config.hpp"

namespace emusim::bench {

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string format_x(const report::ResultPoint& p) {
  if (!p.label.empty()) return p.label;
  if (p.x == std::floor(p.x) && std::fabs(p.x) < 9e15) {
    return report::Table::integer(static_cast<long long>(p.x));
  }
  return report::Table::num(p.x, 2);
}

}  // namespace

std::string usage(const std::string& bench_name) {
  return "usage: " + bench_name +
         " [--csv <path>] [--json <path>] [--quick] [--filter <substr>]"
         " [--reps <n>] [--jobs <n>] [--engine-threads <n>]"
         " [--engine-shard {node|nodelet}] [--trace <path>]"
         " [--trace-cap <records>] [--counters] [--help]\n"
         "value flags also accept --flag=value\n";
}

bool parse_options(int argc, char** argv, Options* out, std::string* err,
                   const std::string& passthrough_prefix) {
  Options o;
  // Current flag's inline "--flag=value" payload, when present.
  bool has_inline = false;
  std::string inline_val;
  auto take_value = [&](int& i, const char* flag, std::string* dst) {
    if (has_inline) {
      *dst = inline_val;
      return true;
    }
    if (i + 1 >= argc) {
      *err = std::string(flag) + " requires an argument";
      return false;
    }
    *dst = argv[++i];
    return true;
  };
  auto take_int = [&](int& i, const char* flag, long lo, long hi, int* dst) {
    std::string v;
    if (!take_value(i, flag, &v)) return false;
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || n < lo || n > hi) {
      *err = std::string(flag) + " wants an integer in [" +
             std::to_string(lo) + ", " + std::to_string(hi) + "], got '" + v +
             "'";
      return false;
    }
    *dst = static_cast<int>(n);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Passthrough flags (e.g. --benchmark_filter=x) keep their '=' intact.
    if (!passthrough_prefix.empty() &&
        arg.compare(0, passthrough_prefix.size(), passthrough_prefix) == 0) {
      o.passthrough.push_back(std::move(arg));
      continue;
    }
    has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_val = arg.substr(eq + 1);
        arg.erase(eq);
        has_inline = true;
      }
    }
    const char* a = arg.c_str();
    if (std::strcmp(a, "--csv") == 0) {
      if (!take_value(i, "--csv", &o.csv_path)) return false;
    } else if (std::strcmp(a, "--json") == 0) {
      if (!take_value(i, "--json", &o.json_path)) return false;
    } else if (std::strcmp(a, "--filter") == 0) {
      if (!take_value(i, "--filter", &o.filter)) return false;
    } else if (std::strcmp(a, "--reps") == 0) {
      if (!take_int(i, "--reps", 1, 1000000, &o.reps)) return false;
    } else if (std::strcmp(a, "--jobs") == 0) {
      if (!take_int(i, "--jobs", 1, 1024, &o.jobs)) return false;
    } else if (std::strcmp(a, "--engine-threads") == 0) {
      if (!take_int(i, "--engine-threads", 1, 1024, &o.engine_threads)) {
        return false;
      }
    } else if (std::strcmp(a, "--engine-shard") == 0) {
      if (!take_value(i, "--engine-shard", &o.engine_shard)) return false;
      if (o.engine_shard != "node" && o.engine_shard != "nodelet") {
        *err = "--engine-shard wants 'node' or 'nodelet', got '" +
               o.engine_shard + "'";
        return false;
      }
    } else if (std::strcmp(a, "--trace") == 0) {
      if (!take_value(i, "--trace", &o.trace_path)) return false;
      if (o.trace_path.empty()) {
        *err = "--trace wants a non-empty path";
        return false;
      }
    } else if (std::strcmp(a, "--trace-cap") == 0) {
      if (!take_int(i, "--trace-cap", 1, 1 << 30, &o.trace_cap)) return false;
    } else if (std::strcmp(a, "--counters") == 0 && !has_inline) {
      o.counters = true;
    } else if (std::strcmp(a, "--quick") == 0 && !has_inline) {
      o.quick = true;
    } else if ((std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) &&
               !has_inline) {
      o.help = true;
    } else {
      *err = std::string("unknown flag '") + argv[i] + "'";
      return false;
    }
  }
  *out = std::move(o);
  return true;
}

Harness::Harness(std::string bench_name, int argc, char** argv,
                 const std::string& passthrough_prefix)
    : name_(std::move(bench_name)) {
  std::string err;
  if (!parse_options(argc, argv, &opt_, &err, passthrough_prefix)) {
    std::fprintf(stderr, "%s: %s\n%s", name_.c_str(), err.c_str(),
                 usage(name_).c_str());
    std::exit(2);
  }
  if (opt_.help) {
    std::fputs(usage(name_).c_str(), stdout);
    std::exit(0);
  }
  result_.bench = name_;
  result_.quick = opt_.quick;
  result_.reps = opt_.reps;
  // Points run inline (no SweepPool) execute on this thread; SweepPool
  // workers install the same values on themselves (sweep_pool.cpp).
  emu::set_engine_threads(opt_.engine_threads);
  emu::set_engine_shard(opt_.engine_shard == "nodelet"
                            ? emu::EngineShard::nodelet
                            : emu::EngineShard::node);
  start_wall_ = wall_now();
  tables_.push_back(TableGroup{name_, 1, {}});
  if (!opt_.trace_path.empty() || opt_.counters) {
    report::BenchObserver::Options obs;
    obs.counters = opt_.counters;
    obs.trace_path = opt_.trace_path;
    obs.trace_capacity = static_cast<std::size_t>(opt_.trace_cap);
    observer_ = std::make_unique<report::BenchObserver>(obs);
    observe_counters_ = report::Json::array();
    if (opt_.counters && opt_.json_path.empty()) {
      std::fprintf(stderr,
                   "%s: note: --counters deltas are emitted into the --json "
                   "result; pass --json <path> to keep them\n",
                   name_.c_str());
    }
  }
}

Harness::~Harness() = default;

void Harness::axes(std::string x, std::string y) {
  result_.x_axis = std::move(x);
  result_.y_axis = std::move(y);
}

void Harness::config(const std::string& key, std::string value) {
  for (auto& [k, v] : result_.config) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  result_.config.emplace_back(key, std::move(value));
}

void Harness::config(const std::string& key, long long value) {
  config(key, std::to_string(value));
}

int Harness::jobs() const {
  if (opt_.jobs > 0) return opt_.jobs;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

bool Harness::enabled(const std::string& series) const {
  return opt_.filter.empty() || series.find(opt_.filter) != std::string::npos;
}

void Harness::table(const std::string& title, int precision) {
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].title == title) {
      current_table_ = i;
      return;
    }
  }
  // The constructor seeds a default table named after the bench; replace it
  // if it is still unused so single-table benches get their real title.
  if (tables_.size() == 1 && tables_[0].series_idx.empty() &&
      tables_[0].title == name_) {
    tables_[0].title = title;
    tables_[0].precision = precision;
    current_table_ = 0;
    return;
  }
  tables_.push_back(TableGroup{title, precision, {}});
  current_table_ = tables_.size() - 1;
}

report::ResultSeries& Harness::series_slot(const std::string& name) {
  for (std::size_t i = 0; i < result_.series.size(); ++i) {
    if (result_.series[i].name == name) return result_.series[i];
  }
  result_.series.push_back(report::ResultSeries{name, {}});
  accums_.emplace_back();
  tables_[current_table_].series_idx.push_back(result_.series.size() - 1);
  return result_.series.back();
}

void Harness::add(const std::string& series, double x, double y,
                  std::vector<std::pair<std::string, double>> extra) {
  add_labeled(series, "", x, y, std::move(extra));
}

void Harness::add_labeled(const std::string& series, const std::string& label,
                          double x, double y,
                          std::vector<std::pair<std::string, double>> extra) {
  for (const auto& [k, v] : extra) {
    if (k == "sim_ms") result_.sim_seconds += v / 1e3;
  }
  if (observer_ != nullptr) {
    absorb_pending_counters(
        series, label.empty() ? format_x(report::ResultPoint{x, y, "", {}})
                              : label);
  }
  report::ResultSeries& s = series_slot(series);
  const std::size_t si =
      static_cast<std::size_t>(&s - result_.series.data());
  // Merge with an existing point at the same position, so a --reps loop
  // over the same sweep averages instead of duplicating.  The stored value
  // is always raw-sum / count — stable accumulation, so the average is the
  // same no matter what order duplicates arrive in (a running mean is not,
  // which would make --reps output depend on scheduling).
  for (std::size_t pi = 0; pi < s.points.size(); ++pi) {
    report::ResultPoint& p = s.points[pi];
    const bool same = label.empty()
                          ? p.label.empty() &&
                                std::fabs(p.x - x) <=
                                    1e-9 * std::fmax(1.0, std::fabs(x))
                          : p.label == label;
    if (!same) continue;
    PointAccum& a = accums_[si][pi];
    a.y_sum += y;
    ++a.n;
    p.y = a.y_sum / a.n;
    for (const auto& [k, v] : extra) {
      for (std::size_t ei = 0; ei < p.extra.size(); ++ei) {
        if (p.extra[ei].first == k) {
          a.extra_sums[ei] += v;
          p.extra[ei].second = a.extra_sums[ei] / a.n;
          break;
        }
      }
    }
    return;
  }
  PointAccum a;
  a.y_sum = y;
  a.n = 1;
  a.extra_sums.reserve(extra.size());
  for (const auto& [k, v] : extra) a.extra_sums.push_back(v);
  s.points.push_back(report::ResultPoint{x, y, label, std::move(extra)});
  accums_[si].push_back(std::move(a));
}

void Harness::fail(const std::string& msg) {
  std::fprintf(stderr, "FAIL: %s\n", msg.c_str());
  std::exit(1);
}

void Harness::absorb_pending_counters(const std::string& series,
                                      const std::string& phase_key) {
  if (observer_ == nullptr || !observer_->counters()) return;
  auto pending = observer_->take_pending_counters();
  const std::string base = series + "/" + phase_key;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    // Several machine runs can back one point (--reps, multi-run kernels);
    // keep them apart so warmup reps stay distinguishable from measured.
    std::string phase = base;
    if (pending.size() > 1) phase += "#run" + std::to_string(i);
    pending[i].set("phase", report::Json::string(phase));
    observe_counters_.push_back(std::move(pending[i]));
  }
}

bool Harness::finish_observe() {
  if (observer_ == nullptr) return true;
  // Runs after the last add() (teardown probes etc.) still get recorded.
  absorb_pending_counters("unattributed", "end");
  bool ok = true;
  report::Json obs = report::Json::object();
  if (observer_->counters()) obs.set("counters", std::move(observe_counters_));
  if (observer_->tracing()) {
    std::string err;
    if (observer_->write_trace(&err)) {
      const report::TraceAccounting acct = observer_->last_trace_accounting();
      report::Json jt = report::to_json(acct);
      jt.set("file", report::Json::string(opt_.trace_path));
      obs.set("trace", std::move(jt));
      std::printf("trace: %zu records -> %s%s\n", acct.records,
                  opt_.trace_path.c_str(),
                  acct.truncated
                      ? " (TRUNCATED: oldest events overwritten; summaries "
                        "are lower bounds)"
                      : "");
    } else {
      std::fprintf(stderr, "%s: --trace: %s\n", name_.c_str(), err.c_str());
      ok = false;
    }
  }
  result_.observe = std::move(obs);
  return ok;
}

void Harness::print_tables() const {
  for (const auto& tg : tables_) {
    if (tg.series_idx.empty()) continue;
    report::Table t(tg.title);
    std::vector<std::string> header = {
        result_.x_axis.empty() ? std::string("x") : result_.x_axis};
    for (std::size_t si : tg.series_idx) {
      header.push_back(result_.series[si].name);
    }
    t.columns(header);
    // Row keys in first-seen order across the table's series.
    std::vector<const report::ResultPoint*> keys;
    for (std::size_t si : tg.series_idx) {
      for (const auto& p : result_.series[si].points) {
        const bool seen =
            std::any_of(keys.begin(), keys.end(),
                        [&p](const report::ResultPoint* k) {
                          return k->label.empty()
                                     ? p.label.empty() &&
                                           std::fabs(k->x - p.x) <=
                                               1e-9 * std::fmax(
                                                          1.0, std::fabs(p.x))
                                     : k->label == p.label;
                        });
        if (!seen) keys.push_back(&p);
      }
    }
    for (const report::ResultPoint* key : keys) {
      std::vector<std::string> cells = {format_x(*key)};
      for (std::size_t si : tg.series_idx) {
        const report::ResultSeries& s = result_.series[si];
        const report::ResultPoint* p = key->label.empty()
                                           ? s.find(key->x)
                                           : s.find_label(key->label);
        cells.push_back(p != nullptr
                            ? report::Table::num(p->y, tg.precision)
                            : std::string("-"));
      }
      t.row(std::move(cells));
    }
    t.print();
  }
}

bool Harness::write_csv() const {
  if (opt_.csv_path.empty()) return true;
  // Union of extra-metric names, in first-appearance order.
  std::vector<std::string> extras;
  for (const auto& s : result_.series) {
    for (const auto& p : s.points) {
      for (const auto& [k, v] : p.extra) {
        if (std::find(extras.begin(), extras.end(), k) == extras.end()) {
          extras.push_back(k);
        }
      }
    }
  }
  std::vector<std::string> header = {
      "bench", "series",
      result_.x_axis.empty() ? std::string("x") : result_.x_axis,
      result_.y_axis.empty() ? std::string("y") : result_.y_axis};
  header.insert(header.end(), extras.begin(), extras.end());
  report::CsvWriter csv(opt_.csv_path, header);
  for (const auto& s : result_.series) {
    for (const auto& p : s.points) {
      std::vector<std::string> row = {result_.bench, s.name, format_x(p),
                                      report::json_number(p.y)};
      for (const auto& name : extras) {
        const double* m = p.metric(name);
        row.push_back(m != nullptr ? report::json_number(*m) : "");
      }
      csv.row(row);
    }
  }
  return csv.ok();
}

int Harness::done() {
  result_.wall_seconds = wall_now() - start_wall_;
  bool ok = finish_observe();
  result_.fingerprint = report::result_fingerprint(result_);
  print_tables();
  ok = write_csv() && ok;
  if (!opt_.json_path.empty()) ok = result_.save(opt_.json_path) && ok;
  return ok ? 0 : 1;
}

void record_config(Harness& h, const emu::SystemConfig& cfg,
                   const std::string& prefix) {
  h.config(prefix + "machine", cfg.name);
  h.config(prefix + "nodes", static_cast<long long>(cfg.nodes));
  h.config(prefix + "nodelets_per_node",
           static_cast<long long>(cfg.nodelets_per_node));
  h.config(prefix + "gcs_per_nodelet",
           static_cast<long long>(cfg.gcs_per_nodelet));
  h.config(prefix + "gc_clock_hz", report::json_number(cfg.gc_clock_hz));
  h.config(prefix + "threadlet_slots_per_gc",
           static_cast<long long>(cfg.threadlet_slots_per_gc));
  h.config(prefix + "migrations_per_sec",
           report::json_number(cfg.migrations_per_sec));
  h.config(prefix + "migration_latency_ps",
           static_cast<long long>(cfg.migration_latency));
  h.config(prefix + "thread_context_bytes",
           static_cast<long long>(cfg.thread_context_bytes));
}

void record_config(Harness& h, const xeon::SystemConfig& cfg,
                   const std::string& prefix) {
  h.config(prefix + "machine", cfg.name);
  h.config(prefix + "cores", static_cast<long long>(cfg.cores));
  h.config(prefix + "sockets", static_cast<long long>(cfg.sockets));
  h.config(prefix + "clock_hz", report::json_number(cfg.clock_hz));
  h.config(prefix + "llc_bytes", static_cast<long long>(cfg.llc_bytes));
  h.config(prefix + "channels", static_cast<long long>(cfg.channels));
  h.config(prefix + "remote_socket_latency_ps",
           static_cast<long long>(cfg.remote_socket_latency));
}

}  // namespace emusim::bench
