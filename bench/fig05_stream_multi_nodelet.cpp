// Figure 5: STREAM ADD bandwidth on eight nodelets (one node card) of the
// Emu Chick vs thread count, for all four spawn strategies.
//
// Paper shape: the remote-spawn strategies reach the machine peak
// (~1.2 GB/s); the local-spawn strategies plateau far below it because
// their workers take contiguous global ranges over element-striped arrays
// and therefore migrate on nearly every element.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/stream_emu.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;
using kernels::SpawnStrategy;
using kernels::StreamParams;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto cfg = emu::SystemConfig::chick_hw();
  const std::size_t n = opt.quick ? (1u << 17) : (1u << 20);

  const SpawnStrategy strategies[4] = {
      SpawnStrategy::serial_spawn, SpawnStrategy::recursive_spawn,
      SpawnStrategy::serial_remote_spawn,
      SpawnStrategy::recursive_remote_spawn};

  report::Table table(
      "Fig 5: STREAM ADD, 8 Emu nodelets (chick_hw), MB/s vs threads");
  table.columns({"threads", "serial", "recursive", "serial_remote",
                 "recursive_remote"});
  report::CsvWriter csv(
      opt.csv_path,
      {"figure", "strategy", "threads", "mb_per_sec", "migrations"});

  const std::vector<int> thread_counts =
      opt.quick ? std::vector<int>{8, 64, 256}
                : std::vector<int>{8, 16, 32, 64, 128, 256, 384, 512};
  for (int t : thread_counts) {
    std::vector<std::string> cells = {report::Table::integer(t)};
    for (auto s : strategies) {
      StreamParams p;
      p.n = n;
      p.threads = t;
      p.strategy = s;
      const auto r = kernels::run_stream_add(cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: STREAM verification failed\n");
        return 1;
      }
      cells.push_back(report::Table::num(r.mb_per_sec));
      csv.row({"fig5", kernels::to_string(s), report::Table::integer(t),
               report::Table::num(r.mb_per_sec),
               report::Table::integer(
                   static_cast<long long>(r.migrations))});
    }
    table.row(cells);
  }
  table.print();
  return 0;
}
