// Figure 5: STREAM ADD bandwidth on eight nodelets (one node card) of the
// Emu Chick vs thread count, for all four spawn strategies.
//
// Paper shape: the remote-spawn strategies reach the machine peak
// (~1.2 GB/s); the local-spawn strategies plateau far below it because
// their workers take contiguous global ranges over element-striped arrays
// and therefore migrate on nearly every element.
#include <vector>

#include "bench_util.hpp"
#include "kernels/stream_emu.hpp"
#include "sweep_pool.hpp"

using namespace emusim;
using kernels::SpawnStrategy;
using kernels::StreamParams;

int main(int argc, char** argv) {
  bench::Harness h("fig05_stream_multi_nodelet", argc, argv);
  const auto cfg = emu::SystemConfig::chick_hw();
  const std::size_t n = h.quick() ? (1u << 17) : (1u << 20);
  bench::record_config(h, cfg);
  h.config("n", static_cast<long long>(n));
  h.axes("threads", "mb_per_sec");
  h.table("Fig 5: STREAM ADD, 8 Emu nodelets (chick_hw), MB/s vs threads");

  const SpawnStrategy strategies[4] = {
      SpawnStrategy::serial_spawn, SpawnStrategy::recursive_spawn,
      SpawnStrategy::serial_remote_spawn,
      SpawnStrategy::recursive_remote_spawn};
  const std::vector<int> thread_counts =
      h.quick() ? std::vector<int>{8, 64, 256}
                : std::vector<int>{8, 16, 32, 64, 128, 256, 384, 512};
  bench::SweepPool pool(h);
  for (int t : thread_counts) {
    for (auto s : strategies) {
      if (!h.enabled(kernels::to_string(s))) continue;
      pool.submit([&h, &cfg, n, t, s](bench::PointSink& sink) {
        StreamParams p;
        p.n = n;
        p.threads = t;
        p.strategy = s;
        const auto r = bench::repeated(
            h, [&] { return kernels::run_stream_add(cfg, p); });
        if (!r.verified) sink.fail("STREAM verification failed");
        sink.add(kernels::to_string(s), t, r.mb_per_sec,
                 {{"sim_ms", to_seconds(r.elapsed) * 1e3},
                  {"migrations", static_cast<double>(r.migrations)}});
      });
    }
  }
  pool.wait();
  return h.done();
}
