// Figure 6: pointer chasing on eight nodelets of the Emu Chick — bandwidth
// vs block size for several thread counts (full_block_shuffle), plus the
// three shuffle modes at the top thread count.
//
// Paper shape: performance is flat across block sizes (Emu is insensitive
// to spatial locality) except block size 1, where almost every hop
// migrates; it recovers by a block size of ~4-8.  Bandwidth scales with
// threads toward ~1 GB/s (about 80% of the machine's STREAM peak).
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "sweep_pool.hpp"

using namespace emusim;
using kernels::ChaseEmuParams;
using kernels::ShuffleMode;

int main(int argc, char** argv) {
  bench::Harness h("fig06_chase_emu", argc, argv);
  const auto cfg = emu::SystemConfig::chick_hw();
  const std::size_t n = h.quick() ? (1u << 15) : (1u << 18);
  bench::record_config(h, cfg);
  h.config("n", static_cast<long long>(n));
  h.axes("block", "mb_per_sec");

  const std::vector<int> thread_counts =
      h.quick() ? std::vector<int>{64, 512}
                : std::vector<int>{64, 128, 256, 512};
  const std::vector<std::size_t> blocks =
      h.quick() ? std::vector<std::size_t>{1, 8, 64, 512}
                : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512};

  auto run = [&h, &cfg, n](bench::PointSink& sink, std::size_t block,
                           int threads, ShuffleMode mode) {
    ChaseEmuParams p;
    p.n = n;
    p.block = block;
    p.threads = threads;
    p.mode = mode;
    const auto r =
        bench::repeated(h, [&] { return kernels::run_chase_emu(cfg, p); });
    if (!r.verified) sink.fail("chase verification failed");
    return r;
  };

  bench::SweepPool pool(h);
  const std::string table_a =
      "Fig 6a: Pointer chasing, Emu chick_hw, 8 nodelets, "
      "full_block_shuffle — MB/s vs block size";
  for (std::size_t b : blocks) {
    for (int t : thread_counts) {
      const std::string series = "t" + std::to_string(t);
      if (!h.enabled(series)) continue;
      if (n / b < static_cast<std::size_t>(t)) continue;
      pool.submit([&run, table_a, series, b, t](bench::PointSink& sink) {
        sink.table(table_a);
        const auto r = run(sink, b, t, ShuffleMode::full_block_shuffle);
        sink.add(series, static_cast<double>(b), r.mb_per_sec,
                 {{"sim_ms", to_seconds(r.elapsed) * 1e3},
                  {"migrations_per_element", r.migrations_per_element}});
      });
    }
  }

  const int top_threads = h.quick() ? 64 : 512;
  h.config("top_threads", static_cast<long long>(top_threads));
  const std::string table_b =
      "Fig 6b: Pointer chasing, Emu chick_hw, top threads — MB/s by "
      "shuffle mode";
  const ShuffleMode modes[3] = {ShuffleMode::intra_block_shuffle,
                                ShuffleMode::block_shuffle,
                                ShuffleMode::full_block_shuffle};
  for (std::size_t b : blocks) {
    if (n / b < static_cast<std::size_t>(top_threads)) continue;
    for (auto mode : modes) {
      if (!h.enabled(to_string(mode))) continue;
      pool.submit(
          [&run, table_b, b, top_threads, mode](bench::PointSink& sink) {
            sink.table(table_b);
            const auto r = run(sink, b, top_threads, mode);
            sink.add(to_string(mode), static_cast<double>(b), r.mb_per_sec,
                     {{"sim_ms", to_seconds(r.elapsed) * 1e3},
                      {"migrations_per_element", r.migrations_per_element}});
          });
    }
  }
  pool.wait();
  return h.done();
}
