// Figure 6: pointer chasing on eight nodelets of the Emu Chick — bandwidth
// vs block size for several thread counts (full_block_shuffle), plus the
// three shuffle modes at the top thread count.
//
// Paper shape: performance is flat across block sizes (Emu is insensitive
// to spatial locality) except block size 1, where almost every hop
// migrates; it recovers by a block size of ~4-8.  Bandwidth scales with
// threads toward ~1 GB/s (about 80% of the machine's STREAM peak).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;
using kernels::ChaseEmuParams;
using kernels::ShuffleMode;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto cfg = emu::SystemConfig::chick_hw();
  const std::size_t n = opt.quick ? (1u << 15) : (1u << 18);

  report::CsvWriter csv(opt.csv_path,
                        {"figure", "mode", "threads", "block", "mb_per_sec",
                         "migrations_per_element"});

  const std::vector<int> thread_counts =
      opt.quick ? std::vector<int>{64, 512}
                : std::vector<int>{64, 128, 256, 512};
  const std::vector<std::size_t> blocks =
      opt.quick ? std::vector<std::size_t>{1, 8, 64, 512}
                : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512};

  report::Table t1(
      "Fig 6a: Pointer chasing, Emu chick_hw, 8 nodelets, "
      "full_block_shuffle — MB/s vs block size");
  {
    std::vector<std::string> hdr = {"block"};
    for (int t : thread_counts) hdr.push_back(std::to_string(t) + " thr");
    t1.columns(hdr);
  }
  for (std::size_t b : blocks) {
    std::vector<std::string> cells = {report::Table::integer(
        static_cast<long long>(b))};
    for (int t : thread_counts) {
      if (n / b < static_cast<std::size_t>(t)) {
        cells.push_back("-");
        continue;
      }
      ChaseEmuParams p;
      p.n = n;
      p.block = b;
      p.threads = t;
      p.mode = ShuffleMode::full_block_shuffle;
      const auto r = kernels::run_chase_emu(cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: chase verification failed\n");
        return 1;
      }
      cells.push_back(report::Table::num(r.mb_per_sec));
      csv.row({"fig6", to_string(p.mode), report::Table::integer(t),
               report::Table::integer(static_cast<long long>(b)),
               report::Table::num(r.mb_per_sec),
               report::Table::num(r.migrations_per_element, 3)});
    }
    t1.row(cells);
  }
  t1.print();

  report::Table t2(
      "Fig 6b: Pointer chasing, Emu chick_hw, 512 threads — MB/s by shuffle "
      "mode");
  t2.columns({"block", "intra_block", "block", "full_block"});
  const ShuffleMode modes[3] = {ShuffleMode::intra_block_shuffle,
                                ShuffleMode::block_shuffle,
                                ShuffleMode::full_block_shuffle};
  const int top_threads = opt.quick ? 64 : 512;
  for (std::size_t b : blocks) {
    std::vector<std::string> cells = {
        report::Table::integer(static_cast<long long>(b))};
    if (n / b < static_cast<std::size_t>(top_threads)) continue;
    for (auto mode : modes) {
      ChaseEmuParams p;
      p.n = n;
      p.block = b;
      p.threads = top_threads;
      p.mode = mode;
      const auto r = kernels::run_chase_emu(cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: chase verification failed\n");
        return 1;
      }
      cells.push_back(report::Table::num(r.mb_per_sec));
      csv.row({"fig6", to_string(mode), report::Table::integer(top_threads),
               report::Table::integer(static_cast<long long>(b)),
               report::Table::num(r.mb_per_sec),
               report::Table::num(r.migrations_per_element, 3)});
    }
    t2.row(cells);
  }
  t2.print();
  return 0;
}
